// Package metadb implements the centralized tweet metadata database of
// Section IV-A: a relation with schema (sid, uid, lat, lon, ruid, rsid)
// stored in fixed-size pages, a B⁺-tree primary index on sid, and a
// B⁺-tree secondary index on rsid. These indexes "accelerate the query
// processing phase" — in particular the level-by-level tweet-thread
// construction of Algorithm 1, whose line 7 ("select all where rsid equals
// to Id") is served by SelectByRSID.
//
// The database simulates disk behaviour: every page touched counts as one
// I/O, optionally with a configurable latency, and a small LRU page cache
// can be enabled (the paper's experiments run with caches off).
package metadb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/geo"
	"repro/internal/social"
)

// Row is one tuple of the metadata relation.
type Row struct {
	SID  social.PostID
	UID  social.UserID
	Lat  float64
	Lon  float64
	RUID social.UserID
	RSID social.PostID
}

// Loc returns the row's location as a geo.Point.
func (r Row) Loc() geo.Point { return geo.Point{Lat: r.Lat, Lon: r.Lon} }

// Options configures a DB.
type Options struct {
	// RowsPerPage is the page capacity; 128 rows of 48 bytes approximates
	// a pair of 4 KB pages per disk read, a typical DBMS setting.
	RowsPerPage int
	// IndexOrder is the B⁺-tree order for both indexes.
	IndexOrder int
	// CacheSize is the number of pages the LRU cache may hold; 0 disables
	// caching (the paper's configuration: "database caches are set off").
	CacheSize int
	// IOLatency is added per simulated page read (0 for tests; benches may
	// set a small value to model disk behaviour).
	IOLatency time.Duration
}

// DefaultOptions returns the configuration used across the experiments.
func DefaultOptions() Options {
	return Options{RowsPerPage: 128, IndexOrder: btree.DefaultOrder}
}

// Stats aggregates simulated I/O counters.
type Stats struct {
	PageReads  int64 // pages fetched from "disk"
	CacheHits  int64 // page requests served by the LRU cache
	IndexReads int64 // B⁺-tree node accesses

	BatchLookups    int64 // keys resolved through the multi-get APIs
	BatchPagesSaved int64 // page+node touches the multi-gets avoided vs single-key loops
}

// BatchStats reports the simulated-I/O work of one multi-get call against
// what the equivalent single-key loop would have cost. PagesRead counts
// distinct data pages plus index nodes actually touched; PagesSaved is the
// number of touches the single-key loop would have added on top (never
// negative — the batch path plans its traversal from the sorted key run
// and falls back to per-key descents when keys are far apart).
type BatchStats struct {
	Lookups    int64
	PagesRead  int64
	PagesSaved int64
}

// add folds another phase of the same logical batch into bs.
func (bs *BatchStats) add(other BatchStats) {
	bs.Lookups += other.Lookups
	bs.PagesRead += other.PagesRead
	bs.PagesSaved += other.PagesSaved
}

// DB is the centralized metadata database. After Freeze, reads are safe
// for concurrent use, and Append may ingest new rows concurrently with
// readers: the row pages and indexes are guarded by an RWMutex (readers
// share it), while the statistics counters and the page cache keep their
// own mutex.
type DB struct {
	opts Options

	// structMu guards pages, the three indexes, and the row/SID/fanout
	// bookkeeping below against live Appends. Read paths take the read
	// lock once per public call (never nested — helpers assume it is
	// held) so a writer cannot deadlock behind a recursive RLock.
	structMu sync.RWMutex
	pages    [][]Row

	sidIndex  *btree.Tree // sid -> row ordinal
	rsidIndex *btree.Tree // rsid -> sids of posts reacting to it
	uidIndex  *btree.Tree // uid -> the user's sids (P_u, ascending)

	mu    sync.Mutex // guards cache and stats
	cache *pageCache
	stats Stats

	snapshot *ReplySnapshot   // CSR reply graph; nil until EnableReplySnapshot
	rowMeta  *RowMetaSnapshot // SID → (loc, author); nil until EnableRowMetaSnapshot

	maxFanout   int // t_m: max replies/forwards observed for one post
	frozen      bool
	totalRows   int
	minSID      social.PostID
	maxSID      social.PostID
	sortedBatch []Row // staging area before Freeze
}

// New creates an empty database.
func New(opts Options) *DB {
	if opts.RowsPerPage <= 0 {
		opts.RowsPerPage = DefaultOptions().RowsPerPage
	}
	if opts.IndexOrder < 3 {
		opts.IndexOrder = btree.DefaultOrder
	}
	db := &DB{
		opts:      opts,
		sidIndex:  btree.MustNew(opts.IndexOrder),
		rsidIndex: btree.MustNew(opts.IndexOrder),
		uidIndex:  btree.MustNew(opts.IndexOrder),
	}
	if opts.CacheSize > 0 {
		db.cache = newPageCache(opts.CacheSize)
	}
	return db
}

// Load bulk-loads posts into the database and freezes it for querying.
// Loading is batch-oriented, matching the paper's offline/batch setting
// for geo-tagged tweets. Duplicate SIDs are rejected.
func Load(opts Options, posts []*social.Post) (*DB, error) {
	db := New(opts)
	for _, p := range posts {
		if err := db.Insert(p); err != nil {
			return nil, err
		}
	}
	db.Freeze()
	return db, nil
}

// Insert stages one post. Insert must not be called after Freeze.
func (db *DB) Insert(p *social.Post) error {
	if db.frozen {
		return fmt.Errorf("metadb: insert after freeze")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	db.sortedBatch = append(db.sortedBatch, Row{
		SID: p.SID, UID: p.UID,
		Lat: p.Loc.Lat, Lon: p.Loc.Lon,
		RUID: p.RUID, RSID: p.RSID,
	})
	return nil
}

// Freeze sorts the staged rows by SID (clustered on the primary key, as a
// timestamp-keyed tweet store naturally is), paginates them, and builds
// both B⁺-tree indexes. After Freeze the database is read-only except for
// Append, the live-ingest path.
func (db *DB) Freeze() {
	db.structMu.Lock()
	defer db.structMu.Unlock()
	if db.frozen {
		return
	}
	rows := db.sortedBatch
	db.sortedBatch = nil
	sort.Slice(rows, func(i, j int) bool { return rows[i].SID < rows[j].SID })
	for i := 1; i < len(rows); i++ {
		if rows[i].SID == rows[i-1].SID {
			panic(fmt.Sprintf("metadb: duplicate SID %d", rows[i].SID))
		}
	}
	per := db.opts.RowsPerPage
	for start := 0; start < len(rows); start += per {
		end := start + per
		if end > len(rows) {
			end = len(rows)
		}
		db.pages = append(db.pages, rows[start:end])
	}
	fanout := make(map[social.PostID]int)
	for ordinal, r := range rows {
		db.sidIndex.Insert(int64(r.SID), int64(ordinal))
		db.uidIndex.Insert(int64(r.UID), int64(r.SID))
		if r.RSID != social.NoPost {
			db.rsidIndex.Insert(int64(r.RSID), int64(r.SID))
			fanout[r.RSID]++
			if fanout[r.RSID] > db.maxFanout {
				db.maxFanout = fanout[r.RSID]
			}
		}
	}
	db.totalRows = len(rows)
	if len(rows) > 0 {
		db.minSID, db.maxSID = rows[0].SID, rows[len(rows)-1].SID
	}
	db.frozen = true
}

// Append inserts one post into a frozen database — the live-ingest path
// between batch index builds (Section IV-A collects tweets periodically;
// the metadata relation is centralized, so replies and forwards can land
// as they happen and immediately count toward thread popularity). Posts
// must arrive in timestamp order: the SID has to exceed every stored SID,
// which keeps the relation clustered on the primary key. Append is safe to
// run concurrently with readers and with other Appends.
func (db *DB) Append(p *social.Post) error {
	if err := p.Validate(); err != nil {
		return err
	}
	db.structMu.Lock()
	defer db.structMu.Unlock()
	if !db.frozen {
		return fmt.Errorf("metadb: append before freeze (stage with Insert instead)")
	}
	if db.totalRows > 0 && p.SID <= db.maxSID {
		return fmt.Errorf("metadb: append SID %d is not beyond max SID %d (posts arrive in timestamp order)",
			p.SID, db.maxSID)
	}
	row := Row{
		SID: p.SID, UID: p.UID,
		Lat: p.Loc.Lat, Lon: p.Loc.Lon,
		RUID: p.RUID, RSID: p.RSID,
	}
	ordinal := db.totalRows
	last := len(db.pages) - 1
	if last >= 0 && len(db.pages[last]) < db.opts.RowsPerPage {
		// Copy-on-append: the page may alias the bulk-load backing array,
		// and slices already handed to readers must never see new writes.
		grown := make([]Row, len(db.pages[last]), len(db.pages[last])+1)
		copy(grown, db.pages[last])
		db.pages[last] = append(grown, row)
		db.mu.Lock()
		if db.cache != nil {
			db.cache.invalidate(last) // drop the stale cached copy
		}
		db.mu.Unlock()
	} else {
		db.pages = append(db.pages, []Row{row})
	}
	db.sidIndex.Insert(int64(p.SID), int64(ordinal))
	db.uidIndex.Insert(int64(p.UID), int64(p.SID))
	if db.rowMeta != nil {
		db.rowMeta.extend(p.SID, RowMeta{Lat: row.Lat, Lon: row.Lon, UID: row.UID})
	}
	if p.RSID != social.NoPost {
		db.rsidIndex.Insert(int64(p.RSID), int64(p.SID))
		if sids, _ := db.rsidIndex.GetCounted(int64(p.RSID)); len(sids) > db.maxFanout {
			db.maxFanout = len(sids)
		}
		if db.snapshot != nil {
			db.snapshot.extend(p.RSID, ChildRef{SID: p.SID, UID: p.UID})
		}
	}
	if db.totalRows == 0 {
		db.minSID = p.SID
	}
	db.maxSID = p.SID
	db.totalRows++
	return nil
}

// Len returns the number of rows.
func (db *DB) Len() int {
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	return db.totalRows
}

// SIDRange returns the smallest and largest SID stored.
func (db *DB) SIDRange() (min, max social.PostID) {
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	return db.minSID, db.maxSID
}

// MaxReplyFanout returns t_m, the maximum number of replied/forwarded posts
// any single post has in the database (Definition 11).
func (db *DB) MaxReplyFanout() int {
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	return db.maxFanout
}

// Stats returns a copy of the I/O counters, folding in index accesses.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	s := db.stats
	db.mu.Unlock()
	s.IndexReads = db.sidIndex.Accesses() + db.rsidIndex.Accesses() + db.uidIndex.Accesses()
	return s
}

// ResetStats zeroes all I/O counters.
func (db *DB) ResetStats() {
	db.mu.Lock()
	db.stats = Stats{}
	db.mu.Unlock()
	db.sidIndex.ResetAccesses()
	db.rsidIndex.ResetAccesses()
	db.uidIndex.ResetAccesses()
}

// readPage simulates fetching one page from disk (or the cache).
func (db *DB) readPage(idx int) []Row {
	db.mu.Lock()
	if db.cache != nil {
		if rows, ok := db.cache.get(idx); ok {
			db.stats.CacheHits++
			db.mu.Unlock()
			return rows
		}
	}
	db.stats.PageReads++
	db.mu.Unlock()
	if db.opts.IOLatency > 0 {
		simulateLatency(db.opts.IOLatency)
	}
	rows := db.pages[idx]
	if db.cache != nil {
		db.mu.Lock()
		db.cache.put(idx, rows)
		db.mu.Unlock()
	}
	return rows
}

func (db *DB) rowByOrdinal(ordinal int64) Row {
	page := int(ordinal) / db.opts.RowsPerPage
	slot := int(ordinal) % db.opts.RowsPerPage
	return db.readPage(page)[slot]
}

// GetBySID returns the row with the given post ID via the primary index.
// With caches off, each B⁺-tree node visited is one simulated I/O, like
// the page fetch itself.
func (db *DB) GetBySID(sid social.PostID) (Row, bool) {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	return db.getBySIDLocked(sid)
}

// getBySIDLocked is GetBySID for callers already holding structMu's read
// lock (RLock is not recursive-safe while a writer waits).
func (db *DB) getBySIDLocked(sid social.PostID) (Row, bool) {
	vals, visited := db.sidIndex.GetCounted(int64(sid))
	db.chargeIndexIO(visited)
	if len(vals) == 0 {
		return Row{}, false
	}
	return db.rowByOrdinal(vals[0]), true
}

// chargeIndexIO adds simulated latency for index-node reads.
func (db *DB) chargeIndexIO(nodes int) {
	if db.opts.IOLatency > 0 && nodes > 0 {
		simulateLatency(time.Duration(nodes) * db.opts.IOLatency)
	}
}

// GetBySIDBatch resolves many post IDs through the primary index in one
// multi-get: the keys are visited in sorted order so B⁺-tree descents are
// shared across runs of nearby keys, and every distinct data page is
// fetched exactly once (in ascending page order, the schedule a disk would
// choose) no matter how many requested rows live on it. rows and found are
// aligned with sids — the same rows, in the same order, a GetBySID loop
// would produce — and the returned BatchStats reports the simulated I/O
// the batch saved against that loop.
func (db *DB) GetBySIDBatch(sids []social.PostID) (rows []Row, found []bool, bs BatchStats) {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	rows, found, bs = db.getBySIDBatchLocked(sids)
	db.noteBatch(bs)
	return rows, found, bs
}

// getBySIDBatchLocked is GetBySIDBatch for callers already holding
// structMu's read lock. It does not fold bs into the cumulative counters;
// public wrappers do, so composed batches count once.
func (db *DB) getBySIDBatchLocked(sids []social.PostID) ([]Row, []bool, BatchStats) {
	rows := make([]Row, len(sids))
	found := make([]bool, len(sids))
	if len(sids) == 0 {
		return rows, found, BatchStats{}
	}
	keys := make([]int64, len(sids))
	for i, sid := range sids {
		keys[i] = int64(sid)
	}
	vals, visited := db.sidIndex.GetBatchCounted(keys)
	db.chargeIndexIO(visited)

	// Collect the distinct pages behind the found ordinals, fetch each
	// once, then assemble rows in input order.
	per := db.opts.RowsPerPage
	ordinals := make([]int64, len(sids))
	pageRows := make(map[int][]Row)
	nFound := 0
	for i, v := range vals {
		if len(v) == 0 {
			continue
		}
		found[i] = true
		ordinals[i] = v[0]
		pageRows[int(v[0])/per] = nil
		nFound++
	}
	pages := make([]int, 0, len(pageRows))
	for p := range pageRows {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	for _, p := range pages {
		pageRows[p] = db.readPage(p)
	}
	for i := range sids {
		if found[i] {
			o := ordinals[i]
			rows[i] = pageRows[int(o)/per][int(o)%per]
		}
	}

	// The single-key loop pays one full descent per key plus one page read
	// per found row; the batch paid visited nodes plus one read per
	// distinct page.
	naive := len(sids)*db.sidIndex.Height() + nFound
	actual := visited + len(pages)
	return rows, found, BatchStats{
		Lookups:    int64(len(sids)),
		PagesRead:  int64(actual),
		PagesSaved: int64(naive - actual),
	}
}

// SelectByRSIDBatch answers one "select all where rsid = Id" per input key
// in a single multi-get: the rsid secondary index is probed batch-wise,
// then every child row across all inputs is fetched through one primary
// batch so data pages shared between threads are read once. out[i] holds
// exactly the rows SelectByRSID(rsids[i]) would return, in the same order.
// One call per thread level turns Algorithm 1's per-node lookup storm into
// level-sized I/O.
func (db *DB) SelectByRSIDBatch(rsids []social.PostID) (out [][]Row, bs BatchStats) {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	out = make([][]Row, len(rsids))
	if len(rsids) == 0 {
		return out, BatchStats{}
	}
	keys := make([]int64, len(rsids))
	for i, rsid := range rsids {
		keys[i] = int64(rsid)
	}
	lists, visited := db.rsidIndex.GetBatchCounted(keys)
	db.chargeIndexIO(visited)

	var childSIDs []social.PostID
	for _, sids := range lists {
		for _, sid := range sids {
			childSIDs = append(childSIDs, social.PostID(sid))
		}
	}
	childRows, childFound, childBS := db.getBySIDBatchLocked(childSIDs)

	next := 0
	for i, sids := range lists {
		if len(sids) == 0 {
			continue
		}
		group := make([]Row, 0, len(sids))
		for range sids {
			if childFound[next] {
				group = append(group, childRows[next])
			}
			next++
		}
		out[i] = group
	}

	// Against a SelectByRSID loop: one rsid descent per input key on top of
	// the per-child primary costs already accounted by the inner batch.
	naiveIndex := len(rsids) * db.rsidIndex.Height()
	bs = BatchStats{
		Lookups:    int64(len(rsids)),
		PagesRead:  int64(visited),
		PagesSaved: int64(naiveIndex - visited),
	}
	bs.add(childBS)
	bs.Lookups = int64(len(rsids)) // children are internal work, not caller keys
	db.noteBatch(bs)
	return out, bs
}

// noteBatch folds one multi-get's savings into the cumulative counters.
func (db *DB) noteBatch(bs BatchStats) {
	db.mu.Lock()
	db.stats.BatchLookups += bs.Lookups
	db.stats.BatchPagesSaved += bs.PagesSaved
	db.mu.Unlock()
}

// UserOf returns the author of a post (Algorithm 4 line 20:
// "select userId where sid = P_j.sid").
func (db *DB) UserOf(sid social.PostID) (social.UserID, bool) {
	r, ok := db.GetBySID(sid)
	if !ok {
		return social.NoUser, false
	}
	return r.UID, true
}

// SelectByRSID returns the rows of all posts that reply to or forward the
// given post (Algorithm 1 line 7), via the rsid secondary index.
func (db *DB) SelectByRSID(rsid social.PostID) []Row {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	sids, visited := db.rsidIndex.GetCounted(int64(rsid))
	db.chargeIndexIO(visited)
	if len(sids) == 0 {
		return nil
	}
	out := make([]Row, 0, len(sids))
	for _, sid := range sids {
		if r, ok := db.getBySIDLocked(social.PostID(sid)); ok {
			out = append(out, r)
		}
	}
	return out
}

// PostsOfUser returns all post IDs of a user in ascending order (P_u of
// the problem definition), via the uid B⁺-tree — index node visits are
// charged like any other simulated I/O. The returned slice must not be
// modified.
func (db *DB) PostsOfUser(uid social.UserID) []social.PostID {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	sids, visited := db.uidIndex.GetCounted(int64(uid))
	db.chargeIndexIO(visited)
	if len(sids) == 0 {
		return nil
	}
	out := make([]social.PostID, len(sids))
	for i, sid := range sids {
		out[i] = social.PostID(sid)
	}
	return out
}

// PostCountOfUser returns |P_u|.
func (db *DB) PostCountOfUser(uid social.UserID) int {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	sids, visited := db.uidIndex.GetCounted(int64(uid))
	db.chargeIndexIO(visited)
	return len(sids)
}

// PostCountOfUserBatch returns |P_u| for every user of a batch, aligned
// with the input. The lookups share one amortized pass over the uid
// B⁺-tree (btree.GetBatchCounted), so a ranking stage that needs every
// candidate user's post count pays close to one node visit per touched
// leaf instead of a root-to-leaf descent per user.
func (db *DB) PostCountOfUserBatch(uids []social.UserID) []int {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	keys := make([]int64, len(uids))
	for i, uid := range uids {
		keys[i] = int64(uid)
	}
	vals, visited := db.uidIndex.GetBatchCounted(keys)
	db.chargeIndexIO(visited)
	counts := make([]int, len(vals))
	for i, v := range vals {
		counts[i] = len(v)
	}
	return counts
}

// UserIDs returns every distinct user with at least one post, ascending.
func (db *DB) UserIDs() []social.UserID {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	keys := db.uidIndex.Keys()
	out := make([]social.UserID, len(keys))
	for i, k := range keys {
		out[i] = social.UserID(k)
	}
	return out
}

// Scan iterates every row in SID order; fn returning false stops the scan.
// Each page touched counts as one I/O, so a full scan models the sequential
// read cost the baseline (index-free) ranker pays. fn must not call back
// into the database (the scan holds the structure read lock).
func (db *DB) Scan(fn func(Row) bool) {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	for i := range db.pages {
		for _, r := range db.readPage(i) {
			if !fn(r) {
				return
			}
		}
	}
}

func (db *DB) mustBeFrozen() {
	if !db.frozen {
		panic("metadb: query before Freeze")
	}
}

// simulateLatency delays for d. The OS cannot sleep for single-digit
// microseconds (time.Sleep rounds up to scheduler granularity, ~100 µs),
// so short latencies spin on the monotonic clock instead.
func simulateLatency(d time.Duration) {
	if d >= 100*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
