package metadb

import (
	"math/rand"
	"testing"

	"repro/internal/social"
)

// assertSnapshotMatchesIndex checks that for every post, the CSR snapshot
// yields the same children (SID and UID, in the same order) as the rsid
// B⁺-tree path.
func assertSnapshotMatchesIndex(t *testing.T, db *DB, snap *ReplySnapshot, sids []social.PostID) {
	t.Helper()
	for _, sid := range sids {
		want := db.SelectByRSID(sid)
		got := snap.Children(sid)
		if len(got) != len(want) {
			t.Fatalf("parent %d: snapshot has %d children, index has %d", sid, len(got), len(want))
		}
		for i := range want {
			if got[i].SID != want[i].SID || got[i].UID != want[i].UID {
				t.Fatalf("parent %d child %d: snapshot %+v, index %+v", sid, i, got[i], want[i])
			}
		}
	}
}

func TestReplySnapshotMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	posts := replyCorpus(rng, 3000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableReplySnapshot()
	if snap == nil || db.ReplySnapshot() != snap {
		t.Fatal("EnableReplySnapshot did not install the snapshot")
	}
	if again := db.EnableReplySnapshot(); again != snap {
		t.Fatal("EnableReplySnapshot is not idempotent")
	}
	sids := make([]social.PostID, len(posts))
	for i, p := range posts {
		sids[i] = p.SID
	}
	assertSnapshotMatchesIndex(t, db, snap, sids)
}

func TestReplySnapshotExtendsOnAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	posts := replyCorpus(rng, 1000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableReplySnapshot()

	// Append replies both to posts that already have reactions and to
	// posts with none (overlay-only parents).
	_, maxSID := db.SIDRange()
	next := maxSID
	for i := 0; i < 200; i++ {
		parent := posts[rng.Intn(len(posts))]
		next++
		if err := db.Append(mkPost(next, social.UserID(rng.Intn(50)+1), parent.SID, parent.UID)); err != nil {
			t.Fatal(err)
		}
	}
	sids := make([]social.PostID, len(posts))
	for i, p := range posts {
		sids[i] = p.SID
	}
	assertSnapshotMatchesIndex(t, db, snap, sids)
}

func TestReplySnapshotZeroIO(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	posts := replyCorpus(rng, 1000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableReplySnapshot()
	db.ResetStats()
	for _, p := range posts {
		snap.Children(p.SID)
	}
	if s := db.Stats(); s.PageReads != 0 || s.IndexReads != 0 {
		t.Errorf("snapshot reads charged I/O: %+v", s)
	}
}
