package metadb

import (
	"math/rand"
	"testing"

	"repro/internal/social"
)

// assertSnapshotMatchesIndex checks that for every post, the CSR snapshot
// yields the same children (SID and UID, in the same order) as the rsid
// B⁺-tree path.
func assertSnapshotMatchesIndex(t *testing.T, db *DB, snap *ReplySnapshot, sids []social.PostID) {
	t.Helper()
	for _, sid := range sids {
		want := db.SelectByRSID(sid)
		got := snap.Children(sid)
		if len(got) != len(want) {
			t.Fatalf("parent %d: snapshot has %d children, index has %d", sid, len(got), len(want))
		}
		for i := range want {
			if got[i].SID != want[i].SID || got[i].UID != want[i].UID {
				t.Fatalf("parent %d child %d: snapshot %+v, index %+v", sid, i, got[i], want[i])
			}
		}
	}
}

func TestReplySnapshotMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	posts := replyCorpus(rng, 3000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableReplySnapshot()
	if snap == nil || db.ReplySnapshot() != snap {
		t.Fatal("EnableReplySnapshot did not install the snapshot")
	}
	if again := db.EnableReplySnapshot(); again != snap {
		t.Fatal("EnableReplySnapshot is not idempotent")
	}
	sids := make([]social.PostID, len(posts))
	for i, p := range posts {
		sids[i] = p.SID
	}
	assertSnapshotMatchesIndex(t, db, snap, sids)
}

func TestReplySnapshotExtendsOnAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	posts := replyCorpus(rng, 1000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableReplySnapshot()

	// Append replies both to posts that already have reactions and to
	// posts with none (overlay-only parents).
	_, maxSID := db.SIDRange()
	next := maxSID
	for i := 0; i < 200; i++ {
		parent := posts[rng.Intn(len(posts))]
		next++
		if err := db.Append(mkPost(next, social.UserID(rng.Intn(50)+1), parent.SID, parent.UID)); err != nil {
			t.Fatal(err)
		}
	}
	sids := make([]social.PostID, len(posts))
	for i, p := range posts {
		sids[i] = p.SID
	}
	assertSnapshotMatchesIndex(t, db, snap, sids)
}

func TestReplySnapshotZeroIO(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	posts := replyCorpus(rng, 1000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableReplySnapshot()
	db.ResetStats()
	for _, p := range posts {
		snap.Children(p.SID)
	}
	if s := db.Stats(); s.PageReads != 0 || s.IndexReads != 0 {
		t.Errorf("snapshot reads charged I/O: %+v", s)
	}
}

// assertRowMetaMatchesRows checks that the row-meta snapshot yields the
// same location and author as the row store for every SID, and reports
// absence identically.
func assertRowMetaMatchesRows(t *testing.T, db *DB, snap *RowMetaSnapshot, sids []social.PostID) {
	t.Helper()
	for _, sid := range sids {
		row, rowOK := db.GetBySID(sid)
		m, metaOK := snap.Get(sid)
		if rowOK != metaOK {
			t.Fatalf("SID %d: row ok=%v, snapshot ok=%v", sid, rowOK, metaOK)
		}
		if !rowOK {
			continue
		}
		if m.Lat != row.Lat || m.Lon != row.Lon || m.UID != row.UID {
			t.Fatalf("SID %d: snapshot %+v, row %+v", sid, m, row)
		}
	}
}

func TestRowMetaSnapshotMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	posts := replyCorpus(rng, 3000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableRowMetaSnapshot()
	if snap == nil || db.RowMetaSnapshot() != snap {
		t.Fatal("EnableRowMetaSnapshot did not install the snapshot")
	}
	if again := db.EnableRowMetaSnapshot(); again != snap {
		t.Fatal("EnableRowMetaSnapshot is not idempotent")
	}
	if snap.Len() != len(posts) {
		t.Fatalf("snapshot Len = %d, want %d", snap.Len(), len(posts))
	}
	sids := make([]social.PostID, 0, len(posts)+10)
	for _, p := range posts {
		sids = append(sids, p.SID)
	}
	sids = append(sids, 900001, 900002) // absent
	assertRowMetaMatchesRows(t, db, snap, sids)
}

func TestRowMetaSnapshotExtendsOnAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	posts := replyCorpus(rng, 1000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableRowMetaSnapshot()
	_, maxSID := db.SIDRange()
	next := maxSID
	appended := make([]social.PostID, 0, 150)
	for i := 0; i < 150; i++ {
		parent := posts[rng.Intn(len(posts))]
		next++
		if err := db.Append(mkPost(next, social.UserID(rng.Intn(50)+1), parent.SID, parent.UID)); err != nil {
			t.Fatal(err)
		}
		appended = append(appended, next)
	}
	assertRowMetaMatchesRows(t, db, snap, appended)
}

func TestRowMetaSnapshotZeroIO(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	posts := replyCorpus(rng, 1000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	snap := db.EnableRowMetaSnapshot()
	db.ResetStats()
	for _, p := range posts {
		snap.Get(p.SID)
	}
	if s := db.Stats(); s.PageReads != 0 || s.IndexReads != 0 {
		t.Errorf("snapshot reads charged I/O: %+v", s)
	}
}
