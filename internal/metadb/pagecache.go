package metadb

import "container/list"

// pageCache is a fixed-capacity LRU cache of row pages. The paper's
// evaluation disables caches "to get fair evaluation results"; the cache
// exists so that ablation benchmarks can quantify what caching would buy.
type pageCache struct {
	capacity int
	order    *list.List            // front = most recently used
	entries  map[int]*list.Element // page index -> element
}

type cacheEntry struct {
	page int
	rows []Row
}

func newPageCache(capacity int) *pageCache {
	return &pageCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[int]*list.Element, capacity),
	}
}

func (c *pageCache) get(page int) ([]Row, bool) {
	el, ok := c.entries[page]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rows, true
}

func (c *pageCache) put(page int, rows []Row) {
	if el, ok := c.entries[page]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).rows = rows
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).page)
		}
	}
	c.entries[page] = c.order.PushFront(&cacheEntry{page: page, rows: rows})
}

// invalidate drops one page if resident — Append grows the tail page, so
// its cached copy would otherwise serve rows without the new one.
func (c *pageCache) invalidate(page int) {
	if el, ok := c.entries[page]; ok {
		c.order.Remove(el)
		delete(c.entries, page)
	}
}

func (c *pageCache) len() int { return c.order.Len() }
