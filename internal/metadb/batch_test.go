package metadb

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/social"
)

// replyCorpus builds a corpus with a reply graph: roots plus chains and
// fans of reactions, SIDs strictly increasing.
func replyCorpus(rng *rand.Rand, n int) []*social.Post {
	posts := make([]*social.Post, 0, n)
	sid := social.PostID(0)
	for len(posts) < n {
		sid++
		root := mkPost(sid, social.UserID(rng.Intn(50)+1), 0, 0)
		posts = append(posts, root)
		// Attach a few reactions to random earlier posts.
		for r := rng.Intn(4); r > 0 && len(posts) < n; r-- {
			parent := posts[rng.Intn(len(posts))]
			sid++
			posts = append(posts, mkPost(sid, social.UserID(rng.Intn(50)+1), parent.SID, parent.UID))
		}
	}
	return posts
}

func TestGetBySIDBatchMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	posts := replyCorpus(rng, 2000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(300)
		sids := make([]social.PostID, n)
		for i := range sids {
			if rng.Intn(5) == 0 {
				sids[i] = social.PostID(rng.Int63n(5000) + 3000) // mostly absent
			} else {
				sids[i] = posts[rng.Intn(len(posts))].SID
			}
		}
		rows, found, bs := db.GetBySIDBatch(sids)
		if len(rows) != n || len(found) != n {
			t.Fatalf("batch sizes %d/%d for %d keys", len(rows), len(found), n)
		}
		for i, sid := range sids {
			row, ok := db.GetBySID(sid)
			if ok != found[i] || row != rows[i] {
				t.Fatalf("trial %d: batch[%d] for sid %d = %+v,%v; loop says %+v,%v",
					trial, i, sid, rows[i], found[i], row, ok)
			}
		}
		if bs.Lookups != int64(n) || bs.PagesSaved < 0 {
			t.Fatalf("trial %d: BatchStats = %+v", trial, bs)
		}
	}
}

func TestSelectByRSIDBatchMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	posts := replyCorpus(rng, 2000)
	db := buildDB(t, posts, Options{RowsPerPage: 32, IndexOrder: 8})
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(200)
		rsids := make([]social.PostID, n)
		for i := range rsids {
			rsids[i] = posts[rng.Intn(len(posts))].SID
		}
		groups, bs := db.SelectByRSIDBatch(rsids)
		if len(groups) != n {
			t.Fatalf("batch returned %d groups for %d keys", len(groups), n)
		}
		for i, rsid := range rsids {
			want := db.SelectByRSID(rsid)
			if len(groups[i]) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(groups[i], want) {
				t.Fatalf("trial %d: batch group for rsid %d = %v, loop says %v",
					trial, rsid, groups[i], want)
			}
		}
		if bs.Lookups != int64(n) || bs.PagesSaved < 0 {
			t.Fatalf("trial %d: BatchStats = %+v", trial, bs)
		}
	}
}

func TestBatchStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	posts := replyCorpus(rng, 500)
	db := buildDB(t, posts, Options{RowsPerPage: 16, IndexOrder: 8})
	db.ResetStats()
	sids := make([]social.PostID, 0, 100)
	for i := 0; i < 100; i++ {
		sids = append(sids, posts[rng.Intn(len(posts))].SID)
	}
	_, _, bs := db.GetBySIDBatch(sids)
	s := db.Stats()
	if s.BatchLookups != 100 || s.BatchLookups != bs.Lookups {
		t.Errorf("cumulative BatchLookups = %d, call said %d", s.BatchLookups, bs.Lookups)
	}
	if s.BatchPagesSaved != bs.PagesSaved || s.BatchPagesSaved < 0 {
		t.Errorf("cumulative BatchPagesSaved = %d, call said %d", s.BatchPagesSaved, bs.PagesSaved)
	}
	// A dense batch over a small corpus must actually save I/O.
	if bs.PagesSaved == 0 {
		t.Error("dense batch saved nothing")
	}
	db.ResetStats()
	if s := db.Stats(); s.BatchLookups != 0 || s.BatchPagesSaved != 0 {
		t.Errorf("ResetStats left batch counters at %+v", s)
	}
}
