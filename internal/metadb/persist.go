package metadb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/social"
)

var rowsMagic = []byte("TKROW1")

// SaveRows writes every row in SID order as fixed-width binary records.
// The resulting stream plus Options fully determine the database: indexes
// and per-user post lists are rebuilt on load.
func (db *DB) SaveRows(w io.Writer) error {
	db.mustBeFrozen()
	db.structMu.RLock()
	defer db.structMu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(rowsMagic); err != nil {
		return err
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(db.totalRows))
	if _, err := bw.Write(count[:]); err != nil {
		return err
	}
	var rec [48]byte
	for i := range db.pages {
		for _, r := range db.pages[i] {
			binary.LittleEndian.PutUint64(rec[0:], uint64(r.SID))
			binary.LittleEndian.PutUint64(rec[8:], uint64(r.UID))
			binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(r.Lat))
			binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(r.Lon))
			binary.LittleEndian.PutUint64(rec[32:], uint64(r.RUID))
			binary.LittleEndian.PutUint64(rec[40:], uint64(r.RSID))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadRows reconstructs a frozen database from a SaveRows stream.
func LoadRows(opts Options, r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(rowsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("metadb: reading magic: %w", err)
	}
	if string(magic) != string(rowsMagic) {
		return nil, fmt.Errorf("metadb: bad rows magic %q", magic)
	}
	var count [8]byte
	if _, err := io.ReadFull(br, count[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(count[:])
	db := New(opts)
	var rec [48]byte
	var prev social.PostID
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("metadb: row %d: %w", i, err)
		}
		row := Row{
			SID:  social.PostID(binary.LittleEndian.Uint64(rec[0:])),
			UID:  social.UserID(binary.LittleEndian.Uint64(rec[8:])),
			Lat:  math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
			Lon:  math.Float64frombits(binary.LittleEndian.Uint64(rec[24:])),
			RUID: social.UserID(binary.LittleEndian.Uint64(rec[32:])),
			RSID: social.PostID(binary.LittleEndian.Uint64(rec[40:])),
		}
		if row.SID <= prev {
			return nil, fmt.Errorf("metadb: rows not strictly SID-sorted at %d", i)
		}
		prev = row.SID
		db.sortedBatch = append(db.sortedBatch, row)
	}
	db.Freeze()
	return db, nil
}
