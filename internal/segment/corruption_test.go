package segment

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"
)

// validSegmentBytes builds one well-formed segment image for the
// corruption matrix and the fuzz seeds.
func validSegmentBytes(t testing.TB) []byte {
	t.Helper()
	posts := testPosts(40, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), time.Second)
	mt := NewMemtable(5)
	for _, p := range posts {
		if err := mt.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	rows, keys, err := mt.snapshot(8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := buildSegment(5, rows, keys)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSegmentCorruptionMatrix damages a valid segment one way per row and
// asserts the typed error class. Every case must fail cleanly — a panic
// on any mutation is the real failure mode this guards against.
func TestSegmentCorruptionMatrix(t *testing.T) {
	base := validSegmentBytes(t)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}, ErrBadMagic},
		{"wrong version", func(b []byte) []byte {
			// The version check precedes the CRC check, so a flipped
			// version reports ErrVersion, not ErrChecksum.
			binary.LittleEndian.PutUint32(b[8:12], 99)
			return b
		}, ErrVersion},
		{"truncated footer", func(b []byte) []byte {
			return b[:len(b)-7]
		}, ErrTruncated},
		{"truncated to header", func(b []byte) []byte {
			return b[:headerSize]
		}, ErrTruncated},
		{"truncated below magic", func(b []byte) []byte {
			return b[:3]
		}, ErrTruncated},
		{"flipped row byte", func(b []byte) []byte {
			b[headerSize+17] ^= 0x01
			return b
		}, ErrChecksum},
		{"flipped postings byte", func(b []byte) []byte {
			rowsEnd := headerSize + 40*rowSize
			b[rowsEnd+3] ^= 0x80
			return b
		}, ErrChecksum},
		{"flipped footer offset", func(b []byte) []byte {
			off := len(b) - footerSize
			b[off] ^= 0x01
			return b
		}, ErrChecksum},
		{"zeroed tail block", func(b []byte) []byte {
			for i := len(b) - footerSize - 64; i < len(b)-footerSize; i++ {
				b[i] = 0
			}
			return b
		}, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), base...)
			b = tc.mutate(b)
			seg, err := OpenBytes(b)
			if err == nil {
				t.Fatalf("OpenBytes accepted %s (segment %v)", tc.name, seg)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("OpenBytes(%s) = %v, want errors.Is %v", tc.name, err, tc.want)
			}
		})
	}
}

// TestSegmentCorruptionConsistentCRC re-checksums structurally broken
// images so the CRC passes and the structural validation must catch the
// damage itself — the ErrCorrupt class.
func TestSegmentCorruptionConsistentCRC(t *testing.T) {
	restamp := func(b []byte) []byte {
		footerOff := len(b) - footerSize
		crc := crc32.Checksum(b[:footerOff+32], castagnoli)
		binary.LittleEndian.PutUint32(b[footerOff+32:], crc)
		return b
	}
	base := validSegmentBytes(t)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"row count overruns postings", func(b []byte) []byte {
			n := binary.LittleEndian.Uint64(b[32:40])
			binary.LittleEndian.PutUint64(b[32:40], n+1)
			return restamp(b)
		}},
		{"rows out of order", func(b []byte) []byte {
			// Swap the SIDs of the first two row records.
			a := binary.LittleEndian.Uint64(b[headerSize:])
			c := binary.LittleEndian.Uint64(b[headerSize+rowSize:])
			binary.LittleEndian.PutUint64(b[headerSize:], c)
			binary.LittleEndian.PutUint64(b[headerSize+rowSize:], a)
			return restamp(b)
		}},
		{"dir offset beyond footer", func(b []byte) []byte {
			off := len(b) - footerSize
			binary.LittleEndian.PutUint64(b[off+16:off+24], uint64(len(b)))
			return restamp(b)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), base...))
			if _, err := OpenBytes(b); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenBytes(%s) = %v, want ErrCorrupt", tc.name, err)
			}
		})
	}
}

// FuzzOpenSegmentBytes is the hostile-input harness: whatever the bytes,
// OpenBytes must return a typed error or a segment that serves its
// directory without panicking.
func FuzzOpenSegmentBytes(f *testing.F) {
	valid := validSegmentBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:headerSize+3])
	f.Add([]byte("TKSEG1\x00\x00"))
	f.Add([]byte{})
	short := append([]byte(nil), valid[:headerSize+footerSize]...)
	f.Add(short)
	f.Fuzz(func(t *testing.T, b []byte) {
		seg, err := OpenBytes(b)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// A segment that opened must serve every key and row.
		for _, k := range seg.Keys() {
			if _, err := seg.FetchPostings(k.Geohash, k.Term); err != nil {
				t.Fatalf("FetchPostings(%v) on opened segment: %v", k, err)
			}
		}
		for i := 0; i < seg.NumRows(); i++ {
			seg.RowAt(i)
		}
	})
}
