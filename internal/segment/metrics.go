package segment

import "repro/internal/telemetry"

// RegisterMetrics exports the store's lifecycle counters and the mmap
// footprint under the tklus_segment_* namespace.
func (st *Store) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("tklus_segment_seals_total",
		"Memtable seals into immutable segment files.", nil,
		func() float64 { return float64(st.Seals()) })
	reg.CounterFunc("tklus_segment_compactions_total",
		"Size-tiered compaction merges committed.", nil,
		func() float64 { return float64(st.Compactions()) })
	reg.GaugeFunc("tklus_segment_files",
		"Live sealed segment files referenced by the current MANIFEST.", nil,
		func() float64 { return float64(st.SegmentCount()) })
	reg.GaugeFunc("tklus_segment_mmap_bytes",
		"Bytes of segment files currently memory-mapped (live + retired).", nil,
		func() float64 { return float64(st.MappedBytes()) })
	reg.GaugeFunc("tklus_segment_memtable_rows",
		"Rows buffered in the mutable memtable awaiting seal.", nil,
		func() float64 { return float64(st.Memtable().Len()) })
}
