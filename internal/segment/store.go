package segment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsx"
	"repro/internal/invindex"
	"repro/internal/metadb"
	"repro/internal/social"
)

// File-name vocabulary of a segment directory. The commit discipline is
// the snapshot store's: artifacts are written under a hidden tmp name,
// fsync'd, renamed into place, and become live only when CURRENT flips to
// a MANIFEST that references them; anything not referenced by the current
// MANIFEST is garbage the next gc pass may remove.
const (
	currentName    = "CURRENT"
	currentTmpName = "CURRENT.tmp"
	manifestPrefix = "MANIFEST-"
	segSuffix      = ".tkseg"
	segFilePrefix  = "seg-"
	tmpSegPrefix   = ".tmp-seg-"

	manifestVersion = 1
)

// segFileName renders sealed segment file names; tmpSegName the hidden
// name a segment is written under before its rename.
func segFileName(seq uint64) string { return fmt.Sprintf("seg-%08d%s", seq, segSuffix) }
func tmpSegName(seq uint64) string  { return fmt.Sprintf("%s%08d", tmpSegPrefix, seq) }
func manifestName(seq uint64) string {
	return fmt.Sprintf("%s%08d", manifestPrefix, seq)
}

// Options configures a Store.
type Options struct {
	// GeohashLen is the key precision; it must match the index the
	// engine queries with.
	GeohashLen int
	// BucketWidth is the time-bucket width: a memtable seals when ingest
	// crosses a bucket boundary, so each segment covers at most one
	// bucket and a query's time window prunes whole segments by their
	// SID (timestamp) range. Non-positive selects 30 days.
	BucketWidth time.Duration
	// BlockSize is the postings block size used when sealing.
	// Non-positive selects invindex.DefaultBlockSize.
	BlockSize int
	// MemtableRows force-seals the memtable when it buffers this many
	// rows, regardless of bucket boundaries. Non-positive disables
	// size-based seals.
	MemtableRows int
	// CompactFanIn is how many adjacent same-size-class segments a
	// compaction round merges into one. Non-positive selects 4.
	CompactFanIn int
}

func (o *Options) normalize() {
	if o.BucketWidth <= 0 {
		o.BucketWidth = 30 * 24 * time.Hour
	}
	if o.BlockSize <= 0 {
		o.BlockSize = invindex.DefaultBlockSize
	}
	if o.CompactFanIn <= 0 {
		o.CompactFanIn = 4
	}
}

// PostingsSource is the read contract a store view serves — structurally
// identical to the engine's PostingsSource, declared here so the package
// has no dependency on the engine.
type PostingsSource interface {
	GeohashLen() int
	FetchPostings(geohash, term string) ([]invindex.Posting, error)
}

// View is one postings source of the store in time order, with the SID
// range the engine's partition pruning tests query windows against. A
// zero MaxSID means unbounded (the memtable view: later ingest only
// appends larger SIDs).
type View struct {
	Source PostingsSource
	MinSID social.PostID
	MaxSID social.PostID
}

// manifestSegment is one segment's entry in the MANIFEST.
type manifestSegment struct {
	File   string `json:"file"`
	MinSID int64  `json:"min_sid"`
	MaxSID int64  `json:"max_sid"`
	Rows   int    `json:"rows"`
	Keys   int    `json:"keys"`
	Size   int64  `json:"size"`
}

// manifestData is the MANIFEST body: the authoritative list of live
// segment files in time order.
type manifestData struct {
	Version  int               `json:"version"`
	NextSeq  uint64            `json:"next_seq"`
	Segments []manifestSegment `json:"segments"`
}

// Store is the LSM-style segment store: sealed immutable segments in time
// order plus one mutable memtable at the head. Mutations (ingest, seal,
// compaction, close) must be serialized by the caller — the segmented
// system funnels them through one lock; concurrent readers are safe at
// any point, including across seals and compactions, because replaced
// segments are retired (kept mapped) rather than unmapped until Close.
type Store struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	segs     []*Segment
	segFiles []string // file name per live segment, parallel to segs
	mem      *Memtable
	nextSeq  uint64
	manSeq   uint64
	retired  []*Segment // replaced by compaction; unmapped at Close

	seals       atomic.Int64
	compactions atomic.Int64
}

// OpenStore opens (or creates) a segment store. A directory without a
// CURRENT file is an empty store; otherwise every segment the current
// MANIFEST references is opened and checksummed — the commit discipline
// guarantees the set is complete or the previous CURRENT is still in
// place.
func OpenStore(dir string, opts Options) (*Store, error) {
	opts.normalize()
	if opts.GeohashLen <= 0 {
		return nil, fmt.Errorf("segment: store needs a geohash length")
	}
	if err := fsx.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, opts: opts, mem: NewMemtable(opts.GeohashLen), nextSeq: 1, manSeq: 0}
	man, manSeq, err := readCurrentManifest(dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		return st, nil
	}
	st.manSeq = manSeq
	st.nextSeq = man.NextSeq
	for _, ms := range man.Segments {
		seg, err := Open(filepath.Join(dir, ms.File))
		if err != nil {
			return nil, fmt.Errorf("segment: opening %s: %w", ms.File, err)
		}
		if seg.GeohashLen() != opts.GeohashLen {
			return nil, fmt.Errorf("%w: %s keyed at geohash length %d, store wants %d",
				ErrCorrupt, ms.File, seg.GeohashLen(), opts.GeohashLen)
		}
		st.segs = append(st.segs, seg)
		st.segFiles = append(st.segFiles, ms.File)
	}
	for i := 1; i < len(st.segs); i++ {
		if st.segs[i].MinSID() <= st.segs[i-1].MaxSID() {
			return nil, fmt.Errorf("%w: segments %s and %s overlap in SID range",
				ErrCorrupt, st.segFiles[i-1], st.segFiles[i])
		}
	}
	return st, nil
}

// readCurrentManifest loads the manifest CURRENT points at; (nil, 0, nil)
// when the store is empty.
func readCurrentManifest(dir string) (*manifestData, uint64, error) {
	cur, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	name := string(bytes.TrimSpace(cur))
	var seq uint64
	if _, err := fmt.Sscanf(name, manifestPrefix+"%08d", &seq); err != nil {
		return nil, 0, fmt.Errorf("%w: CURRENT names %q", ErrCorrupt, name)
	}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, 0, err
	}
	var man manifestData
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, 0, fmt.Errorf("%w: manifest %s: %v", ErrCorrupt, name, err)
	}
	if man.Version != manifestVersion {
		return nil, 0, fmt.Errorf("%w: manifest version %d", ErrVersion, man.Version)
	}
	return &man, seq, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Empty reports whether the store holds no sealed segments and no
// buffered rows.
func (st *Store) Empty() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.segs) == 0 && st.mem.Len() == 0
}

// bucketOf maps an SID (a UnixNano timestamp) to its time bucket.
func (st *Store) bucketOf(sid social.PostID) int64 {
	return int64(sid) / st.opts.BucketWidth.Nanoseconds()
}

// Add ingests one post: it lands in the memtable (indexed immediately)
// and seals the previous bucket's memtable first if the post crosses a
// time-bucket boundary. Returns whether a seal happened, so the caller
// knows to refresh any engine built over the previous view set. Mutations
// are caller-serialized.
func (st *Store) Add(p *social.Post) (sealed bool, err error) {
	if min, _, ok := st.mem.bounds(); ok {
		if st.bucketOf(p.SID) != st.bucketOf(min) {
			if err := st.SealNow(); err != nil {
				return false, err
			}
			sealed = true
		}
	}
	if err := st.mem.Add(p); err != nil {
		return sealed, err
	}
	if st.opts.MemtableRows > 0 && st.mem.Len() >= st.opts.MemtableRows {
		if err := st.SealNow(); err != nil {
			return sealed, err
		}
		sealed = true
	}
	return sealed, nil
}

// SealNow seals the memtable into an immutable segment file and commits a
// MANIFEST referencing it. No-op on an empty memtable. The segment file
// is written under a tmp name, fsync'd and renamed before the MANIFEST
// mentions it, so a crash at any filesystem step leaves the store opening
// either the old segment set or the new one — never a torn mix.
func (st *Store) SealNow() error {
	if st.mem.Len() == 0 {
		return nil
	}
	rows, keys, err := st.mem.snapshot(st.opts.BlockSize)
	if err != nil {
		return err
	}
	seg, file, err := st.writeSegment(rows, keys)
	if err != nil {
		return err
	}
	st.mu.Lock()
	st.segs = append(st.segs, seg)
	st.segFiles = append(st.segFiles, file)
	st.mu.Unlock()
	if err := st.commitManifest(); err != nil {
		return err
	}
	st.mu.Lock()
	st.mem = NewMemtable(st.opts.GeohashLen)
	st.mu.Unlock()
	st.seals.Add(1)
	return st.gc()
}

// writeSegment builds the byte image, writes it tmp → fsync → rename →
// dirsync, and opens the sealed file (mmap'd, checksummed).
func (st *Store) writeSegment(rows []metadb.Row, keys []keyPostings) (*Segment, string, error) {
	data, err := buildSegment(st.opts.GeohashLen, rows, keys)
	if err != nil {
		return nil, "", err
	}
	seq := st.nextSeq
	st.nextSeq++
	tmp := filepath.Join(st.dir, tmpSegName(seq))
	f, err := fsx.Create(tmp)
	if err != nil {
		return nil, "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return nil, "", err
	}
	if err := fsx.SyncClose(f); err != nil {
		return nil, "", err
	}
	file := segFileName(seq)
	if err := fsx.Rename(tmp, filepath.Join(st.dir, file)); err != nil {
		return nil, "", err
	}
	if err := fsx.SyncDir(st.dir); err != nil {
		return nil, "", err
	}
	seg, err := Open(filepath.Join(st.dir, file))
	if err != nil {
		return nil, "", err
	}
	return seg, file, nil
}

// commitManifest writes the next MANIFEST naming the live segment set and
// flips CURRENT to it — the commit point of every seal and compaction.
func (st *Store) commitManifest() error {
	st.mu.RLock()
	man := manifestData{Version: manifestVersion, NextSeq: st.nextSeq}
	for i, seg := range st.segs {
		man.Segments = append(man.Segments, manifestSegment{
			File:   st.segFiles[i],
			MinSID: int64(seg.MinSID()),
			MaxSID: int64(seg.MaxSID()),
			Rows:   seg.NumRows(),
			Keys:   seg.NumKeys(),
			Size:   int64(seg.SizeBytes()),
		})
	}
	seq := st.manSeq + 1
	st.mu.RUnlock()
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	name := manifestName(seq)
	if err := fsx.WriteFileSync(filepath.Join(st.dir, name), raw); err != nil {
		return err
	}
	if err := fsx.WriteFileSync(filepath.Join(st.dir, currentTmpName), []byte(name+"\n")); err != nil {
		return err
	}
	if err := fsx.Rename(filepath.Join(st.dir, currentTmpName), filepath.Join(st.dir, currentName)); err != nil {
		return err
	}
	if err := fsx.SyncDir(st.dir); err != nil {
		return err
	}
	st.manSeq = seq
	return nil
}

// gc removes everything the current MANIFEST does not reference: replaced
// segment files, superseded manifests, tmp leftovers of crashed seals.
// Runs only after a commit, so nothing live is ever a candidate.
func (st *Store) gc() error {
	st.mu.RLock()
	keep := make(map[string]bool, len(st.segFiles)+2)
	for _, f := range st.segFiles {
		keep[f] = true
	}
	keep[currentName] = true
	keep[manifestName(st.manSeq)] = true
	st.mu.RUnlock()
	return gcDir(st.dir, keep)
}

// gcDir removes unreferenced store artifacts from dir. Only names in the
// store's vocabulary are candidates; foreign files are left alone.
func gcDir(dir string, keep map[string]bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		candidate := strings.HasPrefix(name, tmpSegPrefix) ||
			strings.HasPrefix(name, manifestPrefix) ||
			name == currentTmpName ||
			(strings.HasPrefix(name, segFilePrefix) && strings.HasSuffix(name, segSuffix))
		if !candidate {
			continue
		}
		if err := fsx.RemoveAll(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// GCOrphans removes segment-store artifacts in dir that the current
// MANIFEST does not reference — leftovers of seals or compactions that
// crashed between writing a file and committing. It is deliberately
// conservative: when CURRENT or the manifest cannot be read, nothing is
// removed. The snapshot store's gc calls this so `snap-N` collection
// never touches live segment files.
func GCOrphans(dir string) error {
	man, seq, err := readCurrentManifest(dir)
	if err != nil || man == nil {
		return nil
	}
	keep := make(map[string]bool, len(man.Segments)+2)
	for _, ms := range man.Segments {
		keep[ms.File] = true
	}
	keep[currentName] = true
	keep[manifestName(seq)] = true
	return gcDir(dir, keep)
}

// ReferencedFiles returns the absolute paths of everything the store at
// dir is currently committed to: CURRENT, the manifest it names, and
// every segment file that manifest references. Nil when dir holds no
// store (or its CURRENT chain is unreadable — callers gc'ing around a
// store must treat "unknown" as "hands off"). The snapshot store's gc
// consults this list so snap-N collection can never delete a live
// segment file, wherever the segment directory is nested.
func ReferencedFiles(dir string) []string {
	man, seq, err := readCurrentManifest(dir)
	if err != nil || man == nil {
		return nil
	}
	out := []string{
		filepath.Join(dir, currentName),
		filepath.Join(dir, manifestName(seq)),
	}
	for _, ms := range man.Segments {
		out = append(out, filepath.Join(dir, ms.File))
	}
	return out
}

// sizeClass buckets a segment size into base-4 tiers of 16 KiB — the
// size-tiered compaction policy's notion of "about the same size".
func sizeClass(n int) int {
	c := 0
	for n >>= 14; n > 0; n >>= 2 {
		c++
	}
	return c
}

// Compact runs size-tiered compaction to a fixed point: any run of
// CompactFanIn time-adjacent segments in the same size class merges into
// one segment covering their combined bucket range. Returns how many
// input segments were merged away. Each merge commits its own MANIFEST,
// so a crash loses at most the round in flight; replaced segments stay
// mapped (retired) until Close because readers may still iterate them.
func (st *Store) Compact() (int, error) {
	merged := 0
	for {
		st.mu.RLock()
		run := -1
		fan := st.opts.CompactFanIn
		for i := 0; i+fan <= len(st.segs); i++ {
			c := sizeClass(st.segs[i].SizeBytes())
			ok := true
			for j := i + 1; j < i+fan; j++ {
				if sizeClass(st.segs[j].SizeBytes()) != c {
					ok = false
					break
				}
			}
			if ok {
				run = i
				break
			}
		}
		var olds []*Segment
		if run >= 0 {
			olds = append(olds, st.segs[run:run+fan]...)
		}
		st.mu.RUnlock()
		if run < 0 {
			return merged, nil
		}
		rows, keys, err := mergeSegments(olds, st.opts.BlockSize)
		if err != nil {
			return merged, err
		}
		seg, file, err := st.writeSegment(rows, keys)
		if err != nil {
			return merged, err
		}
		st.mu.Lock()
		st.retired = append(st.retired, st.segs[run:run+fan]...)
		segs := append([]*Segment{}, st.segs[:run]...)
		segs = append(segs, seg)
		segs = append(segs, st.segs[run+fan:]...)
		files := append([]string{}, st.segFiles[:run]...)
		files = append(files, file)
		files = append(files, st.segFiles[run+fan:]...)
		st.segs, st.segFiles = segs, files
		st.mu.Unlock()
		if err := st.commitManifest(); err != nil {
			return merged, err
		}
		if err := st.gc(); err != nil {
			return merged, err
		}
		st.compactions.Add(1)
		merged += fan
	}
}

// mergeSegments concatenates time-adjacent segments: rows append in
// order, and each key's postings lists concatenate in segment order —
// sound because adjacent buckets hold disjoint ascending TID ranges.
func mergeSegments(segs []*Segment, blockSize int) ([]metadb.Row, []keyPostings, error) {
	nRows := 0
	for _, s := range segs {
		nRows += s.NumRows()
	}
	rows := make([]metadb.Row, 0, nRows)
	merged := make(map[invindex.Key][]invindex.Posting)
	for _, s := range segs {
		for i := 0; i < s.NumRows(); i++ {
			rows = append(rows, s.RowAt(i))
		}
		for _, k := range s.Keys() {
			ps, err := s.FetchPostings(k.Geohash, k.Term)
			if err != nil {
				return nil, nil, err
			}
			merged[k] = append(merged[k], ps...)
		}
	}
	enc := make(map[invindex.Key][]byte, len(merged))
	for k, ps := range merged {
		payload, err := invindex.EncodeBlockedPostingsList(ps, blockSize)
		if err != nil {
			return nil, nil, err
		}
		enc[k] = payload
	}
	return rows, sortKeyPostings(enc), nil
}

// BulkLoad seeds an empty store from a batch-built corpus: rows in
// ascending SID order and fully decoded postings per key, both split at
// time-bucket boundaries into one segment per occupied bucket, committed
// under a single MANIFEST. This is the migration path a durable server
// takes the first time it starts with segments enabled.
func (st *Store) BulkLoad(rows []metadb.Row, postings map[invindex.Key][]invindex.Posting) error {
	if !st.Empty() {
		return fmt.Errorf("segment: bulk load into a non-empty store")
	}
	if len(rows) == 0 {
		return nil
	}
	// Group rows into contiguous bucket runs.
	type group struct {
		rows   []metadb.Row
		maxSID social.PostID
	}
	var groups []group
	start := 0
	for i := 1; i <= len(rows); i++ {
		if i == len(rows) || st.bucketOf(rows[i].SID) != st.bucketOf(rows[start].SID) {
			groups = append(groups, group{rows: rows[start:i], maxSID: rows[i-1].SID})
			start = i
		}
	}
	// Slice each key's postings at the same boundaries.
	keys := make([]invindex.Key, 0, len(postings))
	for k := range postings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	cursor := make(map[invindex.Key]int, len(postings))
	for _, g := range groups {
		perKey := make(map[invindex.Key][]byte)
		for _, k := range keys {
			ps := postings[k]
			lo := cursor[k]
			hi := lo + sort.Search(len(ps)-lo, func(i int) bool { return ps[lo+i].TID > g.maxSID })
			cursor[k] = hi
			if hi == lo {
				continue
			}
			payload, err := invindex.EncodeBlockedPostingsList(ps[lo:hi], st.opts.BlockSize)
			if err != nil {
				return err
			}
			perKey[k] = payload
		}
		seg, file, err := st.writeSegment(g.rows, sortKeyPostings(perKey))
		if err != nil {
			return err
		}
		st.mu.Lock()
		st.segs = append(st.segs, seg)
		st.segFiles = append(st.segFiles, file)
		st.mu.Unlock()
		st.seals.Add(1)
	}
	if err := st.commitManifest(); err != nil {
		return err
	}
	return st.gc()
}

// Views returns the store's postings sources in time order: each sealed
// segment bounded by its SID range, then the memtable (if non-empty)
// open-ended — later ingest only appends larger SIDs, so an engine built
// over this view set stays correct until the next seal or compaction.
func (st *Store) Views() []View {
	st.mu.RLock()
	defer st.mu.RUnlock()
	views := make([]View, 0, len(st.segs)+1)
	for _, seg := range st.segs {
		views = append(views, View{Source: seg, MinSID: seg.MinSID(), MaxSID: seg.MaxSID()})
	}
	// The memtable view is always published, even while empty: posts can
	// land in it at any time after the engine snapshot, and an engine
	// without the view would serve them only after the next seal. Its
	// lower bound is the first bucket a live post can occupy — everything
	// sealed is below it — so time-window pruning stays exact.
	if min, _, ok := st.mem.bounds(); ok {
		bucketStart := st.bucketOf(min) * st.opts.BucketWidth.Nanoseconds()
		views = append(views, View{Source: st.mem, MinSID: social.PostID(bucketStart)})
	} else {
		var floor social.PostID
		if len(st.segs) > 0 {
			floor = st.segs[len(st.segs)-1].MaxSID() + 1
		}
		views = append(views, View{Source: st.mem, MinSID: floor})
	}
	return views
}

// LookupRowMeta resolves one SID against the sealed segments and the
// memtable — the store's leg of the metadata database's RowMetaSnapshot.
func (st *Store) LookupRowMeta(sid social.PostID) (metadb.RowMeta, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	// Segments are disjoint and sorted by SID range.
	i := sort.Search(len(st.segs), func(i int) bool { return st.segs[i].MaxSID() >= sid })
	if i < len(st.segs) {
		if m, ok := st.segs[i].LookupRowMeta(sid); ok {
			return m, true
		}
	}
	return st.mem.LookupRowMeta(sid)
}

// MaxSealedSID returns the largest SID covered by a sealed segment, 0
// when none — the watermark WAL replay uses to decide which posts still
// belong in the memtable.
func (st *Store) MaxSealedSID() social.PostID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.segs) == 0 {
		return 0
	}
	return st.segs[len(st.segs)-1].MaxSID()
}

// Memtable returns the mutable head table.
func (st *Store) Memtable() *Memtable {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.mem
}

// SegmentCount returns the number of live sealed segments.
func (st *Store) SegmentCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.segs)
}

// Seals and Compactions report lifetime operation counts; MappedBytes the
// total mmap'd size of live and retired segments. Exported as
// tklus_segment_* metrics.
func (st *Store) Seals() int64       { return st.seals.Load() }
func (st *Store) Compactions() int64 { return st.compactions.Load() }

func (st *Store) MappedBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var n int64
	for _, s := range st.segs {
		n += int64(s.MappedBytes())
	}
	for _, s := range st.retired {
		n += int64(s.MappedBytes())
	}
	return n
}

// Close unmaps every live and retired segment. The caller owns the
// guarantee that no queries are in flight.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for _, s := range append(st.segs, st.retired...) {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.segs, st.segFiles, st.retired = nil, nil, nil
	st.mem = NewMemtable(st.opts.GeohashLen)
	return first
}
