// Package segment implements the on-disk immutable segment format behind
// the LSM-style storage engine: ingest flows WAL → in-memory memtable →
// sealed time-bucketed segment files, and reads are served zero-copy from
// mmap'd bytes. A segment file carries the same 48-byte row records the
// metadata database snapshots (TKROW1) and the same blocked postings
// payloads PR 7's block-max traversal consumes (TKFWD2), so the query
// engine's PostingsIterator runs directly over the mapped file — the
// per-block {count, minDelta, span, maxTF} directory doubles as the
// on-disk skip index, with no B⁺-tree descents and no simulated page IO.
//
// File layout (all integers little-endian):
//
//	header  (64 B)  magic "TKSEG1\0\0", version, geohash length,
//	                min/max SID (the time-bucket range), row count, key count
//	rows            rowCount × 48-byte records, ascending SID
//	postings        concatenated blocked postings payloads
//	key dir         keyCount × {uvarint keyLen, key bytes, uvarint off, uvarint len},
//	                keys ascending in ⟨geohash, NUL, term⟩ order
//	footer  (48 B)  rows/postings/dir/footer offsets, CRC-32C over
//	                everything before the checksum, magic "TKSEGEND"
//
// Every parse error is typed and errors.Is-able; hostile bytes never
// panic (see FuzzOpenSegmentBytes).
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/invindex"
	"repro/internal/metadb"
	"repro/internal/social"
)

const (
	headerSize = 64
	footerSize = 48
	rowSize    = 48 // one TKROW1-style record, mirroring metadb's rows.bin

	formatVersion = 1
)

var (
	headerMagic = []byte("TKSEG1\x00\x00")
	footerMagic = []byte("TKSEGEND")

	// castagnoli is the CRC-32C polynomial, matching the snapshot
	// artifacts' checksum discipline.
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Typed corruption errors. Open and OpenBytes never panic on hostile
// input; they return one of these (possibly wrapped with positional
// detail).
var (
	// ErrBadMagic means the file does not start with the segment magic —
	// it is not a segment file at all.
	ErrBadMagic = errors.New("segment: bad magic")
	// ErrVersion means the file is a segment of an unsupported format
	// version.
	ErrVersion = errors.New("segment: unsupported format version")
	// ErrTruncated means the file ends before its footer — a torn or
	// truncated write.
	ErrTruncated = errors.New("segment: truncated file")
	// ErrChecksum means the footer CRC-32C does not cover the bytes on
	// disk — silent corruption between seal and open.
	ErrChecksum = errors.New("segment: checksum mismatch")
	// ErrCorrupt means the checksummed structure is internally
	// inconsistent (out-of-range offsets, unsorted keys, misaligned
	// sections).
	ErrCorrupt = errors.New("segment: corrupt structure")
)

// keyPostings pairs one ⟨geohash, term⟩ key with its already-encoded
// blocked postings payload.
type keyPostings struct {
	key     invindex.Key
	payload []byte
}

// buildSegment serializes rows and postings into a complete TKSEG1 byte
// image. Rows must be in ascending SID order and non-empty; keys must be
// sorted by Key.String(). The image is what Open/OpenBytes parse and what
// the store writes (tmp → fsync → rename) when sealing a memtable or
// merging segments.
func buildSegment(geohashLen int, rows []metadb.Row, keys []keyPostings) ([]byte, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("segment: refusing to build an empty segment")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SID <= rows[i-1].SID {
			return nil, fmt.Errorf("segment: rows not in ascending SID order at %d", i)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i].key.String() <= keys[i-1].key.String() {
			return nil, fmt.Errorf("segment: keys not in ascending order at %d", i)
		}
	}

	dirSize := 0
	postingsSize := 0
	for _, kp := range keys {
		k := kp.key.String()
		dirSize += binary.MaxVarintLen64 + len(k) + 2*binary.MaxVarintLen64
		postingsSize += len(kp.payload)
	}
	buf := make([]byte, 0, headerSize+len(rows)*rowSize+postingsSize+dirSize+footerSize)

	// Header.
	var hdr [headerSize]byte
	copy(hdr[0:8], headerMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], formatVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(geohashLen))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(rows[0].SID))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(rows[len(rows)-1].SID))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(rows)))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(len(keys)))
	buf = append(buf, hdr[:]...)

	// Rows section: the exact record layout metadb's rows.bin uses, so a
	// mapped segment can serve row metadata with the same binary search
	// the snapshot loader validates.
	rowsOff := uint64(len(buf))
	var rec [rowSize]byte
	for _, r := range rows {
		encodeRow(rec[:], r)
		buf = append(buf, rec[:]...)
	}

	// Postings section: blocked payloads back to back; the key directory
	// carries the offsets.
	postingsOff := uint64(len(buf))
	offs := make([]uint64, len(keys))
	for i, kp := range keys {
		offs[i] = uint64(len(buf)) - postingsOff
		buf = append(buf, kp.payload...)
	}

	// Key directory.
	dirOff := uint64(len(buf))
	for i, kp := range keys {
		k := kp.key.String()
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, offs[i])
		buf = binary.AppendUvarint(buf, uint64(len(kp.payload)))
	}

	// Footer: offset table, checksum, closing magic.
	footerOff := uint64(len(buf))
	var ftr [footerSize]byte
	binary.LittleEndian.PutUint64(ftr[0:8], rowsOff)
	binary.LittleEndian.PutUint64(ftr[8:16], postingsOff)
	binary.LittleEndian.PutUint64(ftr[16:24], dirOff)
	binary.LittleEndian.PutUint64(ftr[24:32], footerOff)
	buf = append(buf, ftr[:32]...)
	crc := crc32.Checksum(buf, castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = append(buf, 0, 0, 0, 0) // reserved
	buf = append(buf, footerMagic...)
	return buf, nil
}

// encodeRow writes one 48-byte row record (same field order as metadb's
// TKROW1 records).
func encodeRow(dst []byte, r metadb.Row) {
	binary.LittleEndian.PutUint64(dst[0:8], uint64(r.SID))
	binary.LittleEndian.PutUint64(dst[8:16], uint64(r.UID))
	binary.LittleEndian.PutUint64(dst[16:24], math.Float64bits(r.Lat))
	binary.LittleEndian.PutUint64(dst[24:32], math.Float64bits(r.Lon))
	binary.LittleEndian.PutUint64(dst[32:40], uint64(r.RUID))
	binary.LittleEndian.PutUint64(dst[40:48], uint64(r.RSID))
}

// decodeRow inverts encodeRow.
func decodeRow(b []byte) metadb.Row {
	return metadb.Row{
		SID:  social.PostID(binary.LittleEndian.Uint64(b[0:8])),
		UID:  social.UserID(binary.LittleEndian.Uint64(b[8:16])),
		Lat:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
		Lon:  math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
		RUID: social.UserID(binary.LittleEndian.Uint64(b[32:40])),
		RSID: social.PostID(binary.LittleEndian.Uint64(b[40:48])),
	}
}

// dirEntry is one parsed key-directory entry: the key in its sortable
// string form and the payload's position inside the postings section.
type dirEntry struct {
	key string
	off uint64
	n   uint64
}

// parseSegment validates the byte image and returns a Segment serving
// reads directly over b. The checks run coarsest-first so each corruption
// class maps to its typed error: magic, version, footer presence, then
// the CRC over everything the footer claims, then structural consistency.
func parseSegment(b []byte) (*Segment, error) {
	if len(b) < len(headerMagic) {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the magic", ErrTruncated, len(b))
	}
	if string(b[:len(headerMagic)]) != string(headerMagic) {
		return nil, ErrBadMagic
	}
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrTruncated, len(b))
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != formatVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, formatVersion)
	}
	if len(b) < headerSize+footerSize {
		return nil, fmt.Errorf("%w: no room for a footer", ErrTruncated)
	}
	if string(b[len(b)-len(footerMagic):]) != string(footerMagic) {
		return nil, fmt.Errorf("%w: footer magic missing", ErrTruncated)
	}
	ftr := b[len(b)-footerSize:]
	footerOff := binary.LittleEndian.Uint64(ftr[24:32])
	if footerOff != uint64(len(b)-footerSize) {
		return nil, fmt.Errorf("%w: footer offset %d does not close a %d-byte file",
			ErrTruncated, footerOff, len(b))
	}
	wantCRC := binary.LittleEndian.Uint32(ftr[32:36])
	if got := crc32.Checksum(b[:footerOff+32], castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: crc32c %08x, footer says %08x", ErrChecksum, got, wantCRC)
	}

	// Past the checksum every length field is trusted-but-verified: a
	// consistent CRC over an inconsistent structure is still ErrCorrupt.
	geohashLen := int(binary.LittleEndian.Uint32(b[12:16]))
	minSID := social.PostID(binary.LittleEndian.Uint64(b[16:24]))
	maxSID := social.PostID(binary.LittleEndian.Uint64(b[24:32]))
	nRows := binary.LittleEndian.Uint64(b[32:40])
	nKeys := binary.LittleEndian.Uint64(b[40:48])
	rowsOff := binary.LittleEndian.Uint64(ftr[0:8])
	postingsOff := binary.LittleEndian.Uint64(ftr[8:16])
	dirOff := binary.LittleEndian.Uint64(ftr[16:24])
	if rowsOff != headerSize ||
		postingsOff != rowsOff+nRows*rowSize ||
		postingsOff > dirOff || dirOff > footerOff {
		return nil, fmt.Errorf("%w: section offsets out of order", ErrCorrupt)
	}
	if nRows == 0 || minSID > maxSID {
		return nil, fmt.Errorf("%w: empty segment or inverted SID range", ErrCorrupt)
	}

	seg := &Segment{
		b:          b,
		geohashLen: geohashLen,
		minSID:     minSID,
		maxSID:     maxSID,
		rows:       b[rowsOff:postingsOff],
		nRows:      int(nRows),
		postings:   b[postingsOff:dirOff],
	}
	dir := b[dirOff:footerOff]
	seg.keys = make([]dirEntry, 0, nKeys)
	for i := uint64(0); i < nKeys; i++ {
		keyLen, n := binary.Uvarint(dir)
		if n <= 0 || keyLen > uint64(len(dir)-n) {
			return nil, fmt.Errorf("%w: key directory entry %d overruns", ErrCorrupt, i)
		}
		dir = dir[n:]
		key := string(dir[:keyLen])
		dir = dir[keyLen:]
		off, n := binary.Uvarint(dir)
		if n <= 0 {
			return nil, fmt.Errorf("%w: key directory entry %d overruns", ErrCorrupt, i)
		}
		dir = dir[n:]
		plen, n := binary.Uvarint(dir)
		if n <= 0 {
			return nil, fmt.Errorf("%w: key directory entry %d overruns", ErrCorrupt, i)
		}
		dir = dir[n:]
		if off > uint64(len(seg.postings)) || plen > uint64(len(seg.postings))-off {
			return nil, fmt.Errorf("%w: key %q payload out of range", ErrCorrupt, key)
		}
		if len(seg.keys) > 0 && key <= seg.keys[len(seg.keys)-1].key {
			return nil, fmt.Errorf("%w: key directory not sorted at %q", ErrCorrupt, key)
		}
		seg.keys = append(seg.keys, dirEntry{key: key, off: off, n: plen})
	}
	if len(dir) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after key directory", ErrCorrupt, len(dir))
	}
	// Row records must be ascending for the binary search to be sound.
	prev := int64(-1 << 62)
	for i := 0; i < seg.nRows; i++ {
		sid := int64(binary.LittleEndian.Uint64(seg.rows[i*rowSize:]))
		if sid <= prev {
			return nil, fmt.Errorf("%w: rows not in ascending SID order at %d", ErrCorrupt, i)
		}
		prev = sid
	}
	if social.PostID(binary.LittleEndian.Uint64(seg.rows[0:8])) != minSID ||
		social.PostID(binary.LittleEndian.Uint64(seg.rows[(seg.nRows-1)*rowSize:])) != maxSID {
		return nil, fmt.Errorf("%w: header SID range disagrees with row records", ErrCorrupt)
	}
	return seg, nil
}

// sortKeyPostings orders a key→payload map into the directory's sorted
// form.
func sortKeyPostings(m map[invindex.Key][]byte) []keyPostings {
	out := make([]keyPostings, 0, len(m))
	for k, payload := range m {
		out = append(out, keyPostings{key: k, payload: payload})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key.String() < out[j].key.String() })
	return out
}
