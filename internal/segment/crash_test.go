package segment

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/fsx"
	"repro/internal/invindex"
	"repro/internal/social"
)

var errInjectedCrash = errors.New("injected crash")

// reopenedContent opens the store fresh from disk and returns its sealed
// postings — what a restarted process would serve before any new ingest.
func reopenedContent(t *testing.T, dir string, opts Options) map[invindex.Key][]invindex.Posting {
	t.Helper()
	st, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("reopen after injected crash: %v", err)
	}
	defer st.Close()
	return sealedPostings(t, st)
}

// equalContent compares postings maps (nil and empty are equal).
func equalContent(a, b map[invindex.Key][]invindex.Posting) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if !reflect.DeepEqual(av, b[k]) {
			return false
		}
	}
	return true
}

// TestSegmentSealCrashInjection kills SealNow immediately before every
// filesystem mutation — segment create, fsync, rename, directory sync,
// manifest write, CURRENT swap, gc removes — and asserts that a store
// reopened from the directory sees either the pre-seal segment set or the
// post-seal one, never a torn mix, exactly mirroring the snapshot store's
// TestSaveCrashInjection contract.
func TestSegmentSealCrashInjection(t *testing.T) {
	const geohashLen = 5
	opts := Options{GeohashLen: geohashLen, BucketWidth: time.Hour, BlockSize: 8}
	batchA := testPosts(20, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), time.Second)
	batchB := testPosts(20, time.Date(2013, 1, 1, 0, 1, 0, 0, time.UTC), time.Second)
	oracleOld := oraclePostings(batchA, geohashLen)
	oracleNew := oraclePostings(append(append([]*social.Post{}, batchA...), batchB...), geohashLen)

	for kill := 1; ; kill++ {
		dir := t.TempDir()
		st, err := OpenStore(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range batchA {
			if _, err := st.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.SealNow(); err != nil {
			t.Fatal(err)
		}
		for _, p := range batchB {
			if _, err := st.Add(p); err != nil {
				t.Fatal(err)
			}
		}

		ops := 0
		fsx.SetHook(func(op fsx.Op, path string) error {
			ops++
			if ops == kill {
				return errInjectedCrash
			}
			return nil
		})
		sealErr := st.SealNow()
		fsx.SetHook(nil)
		st.Close()

		if sealErr == nil {
			// The kill point lies beyond the seal's op count: the clean
			// run must serve the full content, and the loop has covered
			// every mutation.
			if got := reopenedContent(t, dir, opts); !equalContent(got, oracleNew) {
				t.Fatalf("kill %d: clean seal content diverges", kill)
			}
			t.Logf("seal performs %d filesystem ops; all kill points recovered", ops-1)
			return
		}
		if !errors.Is(sealErr, errInjectedCrash) {
			t.Fatalf("kill %d: unexpected error %v", kill, sealErr)
		}
		got := reopenedContent(t, dir, opts)
		if !equalContent(got, oracleOld) && !equalContent(got, oracleNew) {
			t.Fatalf("kill %d: reopened store is a torn mix (%d keys, old %d, new %d)",
				kill, len(got), len(oracleOld), len(oracleNew))
		}
	}
}

// TestSegmentCompactionCrashInjection kills Compact before every
// filesystem mutation. Compaction rewrites content it already has, so the
// reopened store must always serve the full oracle content; what may
// differ is only how many files carry it — the old segment set or the
// merged one, never a mix (a missing referenced file fails the reopen).
func TestSegmentCompactionCrashInjection(t *testing.T) {
	const geohashLen = 5
	opts := Options{GeohashLen: geohashLen, BucketWidth: time.Hour, BlockSize: 8, CompactFanIn: 2}
	posts := testPosts(48, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute)
	oracle := oraclePostings(posts, geohashLen)

	for kill := 1; ; kill++ {
		dir := t.TempDir()
		st, err := OpenStore(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range posts {
			if _, err := st.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.SealNow(); err != nil {
			t.Fatal(err)
		}
		before := st.SegmentCount()
		if before < 2 {
			t.Fatalf("need multiple segments to compact, got %d", before)
		}

		ops := 0
		fsx.SetHook(func(op fsx.Op, path string) error {
			ops++
			if ops == kill {
				return errInjectedCrash
			}
			return nil
		})
		_, compactErr := st.Compact()
		fsx.SetHook(nil)
		st.Close()

		if compactErr == nil {
			st2, err := OpenStore(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if st2.SegmentCount() >= before {
				t.Fatalf("kill %d: clean compaction did not reduce segments (%d -> %d)",
					kill, before, st2.SegmentCount())
			}
			if got := sealedPostings(t, st2); !equalContent(got, oracle) {
				t.Fatalf("kill %d: clean compaction changed content", kill)
			}
			st2.Close()
			t.Logf("compaction performs %d filesystem ops; all kill points recovered", ops-1)
			return
		}
		if !errors.Is(compactErr, errInjectedCrash) {
			t.Fatalf("kill %d: unexpected error %v", kill, compactErr)
		}
		if got := reopenedContent(t, dir, opts); !equalContent(got, oracle) {
			t.Fatalf("kill %d: reopened store lost content after crashed compaction", kill)
		}
	}
}
