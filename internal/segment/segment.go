package segment

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"repro/internal/invindex"
	"repro/internal/metadb"
	"repro/internal/social"
)

// Segment is one immutable sealed segment, served read-only over its byte
// image — an mmap'd file in the common case. All lookups are zero-copy:
// postings iterate lazily over the mapped payload (the blocked directory
// is the skip index) and row metadata is binary-searched in place over
// the 48-byte records. A Segment is safe for concurrent readers; Close
// must not race in-flight reads (the store retires replaced segments and
// unmaps only at shutdown for exactly that reason).
type Segment struct {
	b          []byte
	mapped     bool // b is an mmap'd region, not heap bytes
	geohashLen int
	minSID     social.PostID
	maxSID     social.PostID
	rows       []byte
	nRows      int
	postings   []byte
	keys       []dirEntry
}

// OpenBytes parses a segment image held in memory. It is the parse core
// behind Open, and the fuzz entry point: hostile bytes must produce a
// typed error, never a panic.
func OpenBytes(b []byte) (*Segment, error) {
	return parseSegment(b)
}

// Open maps a segment file and parses it. The whole file is checksummed
// on open, so a segment that opens cleanly serves exactly the bytes its
// seal wrote. On platforms without mmap (or when mapping fails) the file
// is read into memory instead — same contract, one copy.
func Open(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	b, mapped, err := mapFile(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("segment: mapping %s: %w", path, err)
	}
	seg, err := parseSegment(b)
	if err != nil {
		if mapped {
			unmapFile(b)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	seg.mapped = mapped
	return seg, nil
}

// Close releases the mapping. The caller owns the guarantee that no
// reader still holds iterators or row slices into the segment.
func (s *Segment) Close() error {
	if s.mapped {
		s.mapped = false
		return unmapFile(s.b)
	}
	return nil
}

// GeohashLen returns the geohash precision the segment's keys use. Part
// of the engine's PostingsSource contract.
func (s *Segment) GeohashLen() int { return s.geohashLen }

// MinSID and MaxSID bound the tweet IDs (timestamps) the segment covers —
// the time-bucket range the engine's partition pruning tests a query
// window against.
func (s *Segment) MinSID() social.PostID { return s.minSID }
func (s *Segment) MaxSID() social.PostID { return s.maxSID }

// NumRows returns the number of row records.
func (s *Segment) NumRows() int { return s.nRows }

// NumKeys returns the number of ⟨geohash, term⟩ keys.
func (s *Segment) NumKeys() int { return len(s.keys) }

// SizeBytes returns the byte length of the segment image.
func (s *Segment) SizeBytes() int { return len(s.b) }

// MappedBytes returns the size of the mmap'd region, 0 when the segment
// was read into heap memory instead.
func (s *Segment) MappedBytes() int {
	if !s.mapped {
		return 0
	}
	return len(s.b)
}

// findKey binary-searches the key directory.
func (s *Segment) findKey(geohash, term string) (dirEntry, bool) {
	want := invindex.Key{Geohash: geohash, Term: term}.String()
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i].key >= want })
	if i < len(s.keys) && s.keys[i].key == want {
		return s.keys[i], true
	}
	return dirEntry{}, false
}

// FetchPostings decodes the whole postings list for ⟨geohash, term⟩, or
// nil if the key has no postings — the same contract as
// invindex.Index.FetchPostings, so a Segment slots in as an engine
// PostingsSource.
func (s *Segment) FetchPostings(geohash, term string) ([]invindex.Posting, error) {
	e, ok := s.findKey(geohash, term)
	if !ok {
		return nil, nil
	}
	return invindex.DecodeBlockedPostingsList(s.postings[e.off : e.off+e.n])
}

// OpenPostings returns a lazy block-skipping iterator directly over the
// mapped payload — no copy, blocks decode only when the cursor enters
// them. Nil with no error when the key has no postings, mirroring
// invindex.Index.OpenPostings; the engine's block-max traversal finds
// this method via its PostingsOpener assertion.
func (s *Segment) OpenPostings(geohash, term string) (*invindex.PostingsIterator, error) {
	e, ok := s.findKey(geohash, term)
	if !ok {
		return nil, nil
	}
	return invindex.NewBlockedIterator(s.postings[e.off : e.off+e.n])
}

// Keys returns every key in the segment in sorted order. Compaction and
// tests use it; the query path goes through findKey.
func (s *Segment) Keys() []invindex.Key {
	out := make([]invindex.Key, 0, len(s.keys))
	for _, e := range s.keys {
		k, err := invindex.ParseKey(e.key)
		if err != nil {
			continue // unreachable: parseSegment validated the directory
		}
		out = append(out, k)
	}
	return out
}

// RowAt decodes row record i. Compaction and tests use it.
func (s *Segment) RowAt(i int) metadb.Row {
	return decodeRow(s.rows[i*rowSize : (i+1)*rowSize])
}

// LookupRowMeta binary-searches the row records in place — the
// segment-backed leg of the metadata database's RowMetaSnapshot. No row
// struct is materialized unless the SID is present.
func (s *Segment) LookupRowMeta(sid social.PostID) (metadb.RowMeta, bool) {
	if sid < s.minSID || sid > s.maxSID {
		return metadb.RowMeta{}, false
	}
	lo, hi := 0, s.nRows
	for lo < hi {
		mid := (lo + hi) / 2
		got := social.PostID(binary.LittleEndian.Uint64(s.rows[mid*rowSize:]))
		switch {
		case got < sid:
			lo = mid + 1
		case got > sid:
			hi = mid
		default:
			r := decodeRow(s.rows[mid*rowSize : (mid+1)*rowSize])
			return metadb.RowMeta{Lat: r.Lat, Lon: r.Lon, UID: r.UID}, true
		}
	}
	return metadb.RowMeta{}, false
}
