//go:build !unix

package segment

import (
	"io"
	"os"
)

// mapFile on platforms without the unix mmap syscall reads the whole file
// into heap memory — same read contract, one copy, MappedBytes reports 0.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return b, false, nil
}

// unmapFile is a no-op for heap-backed images.
func unmapFile([]byte) error { return nil }
