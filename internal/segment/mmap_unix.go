//go:build unix

package segment

import (
	"io"
	"os"
	"syscall"
)

// mapFile memory-maps the file read-only. A zero-length file maps to nil
// (parseSegment rejects it as truncated); a failed mmap falls back to
// reading the file into heap memory, preserving the read contract at the
// cost of one copy.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err == nil {
		return b, true, nil
	}
	b, rerr := io.ReadAll(f)
	if rerr != nil {
		return nil, false, rerr
	}
	return b, false, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
