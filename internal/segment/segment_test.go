package segment

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/invindex"
	"repro/internal/metadb"
	"repro/internal/social"
)

// testPosts builds a small multi-bucket corpus: n posts stepping `step`
// apart starting at `start`, cycling through a handful of word sets and
// two nearby locations.
func testPosts(n int, start time.Time, step time.Duration) []*social.Post {
	wordSets := [][]string{
		{"hotel", "great"},
		{"hotel", "view", "view"},
		{"pizza", "downtown"},
		{"museum"},
		nil, // posts with no indexable words still carry rows
	}
	locs := []geo.Point{{Lat: 43.70, Lon: -79.40}, {Lat: 43.71, Lon: -79.42}}
	posts := make([]*social.Post, n)
	for i := range posts {
		posts[i] = &social.Post{
			SID:   social.PostID(start.Add(time.Duration(i) * step).UnixNano()),
			UID:   social.UserID(100 + i%7),
			Loc:   locs[i%len(locs)],
			Words: wordSets[i%len(wordSets)],
		}
	}
	return posts
}

// oraclePostings replicates the batch build's map/reduce over posts: term
// frequency per post, keys at the given precision, postings ascending by
// TID.
func oraclePostings(posts []*social.Post, geohashLen int) map[invindex.Key][]invindex.Posting {
	out := make(map[invindex.Key][]invindex.Posting)
	for _, p := range posts {
		if len(p.Words) == 0 {
			continue
		}
		tf := make(map[string]uint32)
		for _, w := range p.Words {
			tf[w]++
		}
		cell := geo.Encode(p.Loc, geohashLen)
		for term, f := range tf {
			k := invindex.Key{Geohash: cell, Term: term}
			out[k] = append(out[k], invindex.Posting{TID: p.SID, TF: f})
		}
	}
	return out
}

// sealedPostings gathers every sealed segment's postings per key, in
// segment order.
func sealedPostings(t *testing.T, st *Store) map[invindex.Key][]invindex.Posting {
	t.Helper()
	out := make(map[invindex.Key][]invindex.Posting)
	st.mu.RLock()
	segs := append([]*Segment{}, st.segs...)
	st.mu.RUnlock()
	for _, seg := range segs {
		for _, k := range seg.Keys() {
			ps, err := seg.FetchPostings(k.Geohash, k.Term)
			if err != nil {
				t.Fatalf("FetchPostings(%v): %v", k, err)
			}
			out[k] = append(out[k], ps...)
		}
	}
	return out
}

func TestSegmentRoundtrip(t *testing.T) {
	const geohashLen = 5
	posts := testPosts(200, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), time.Second)
	mt := NewMemtable(geohashLen)
	for _, p := range posts {
		if err := mt.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	rows, keys, err := mt.snapshot(16)
	if err != nil {
		t.Fatal(err)
	}
	data, err := buildSegment(geohashLen, rows, keys)
	if err != nil {
		t.Fatal(err)
	}

	check := func(seg *Segment) {
		t.Helper()
		if seg.GeohashLen() != geohashLen {
			t.Fatalf("GeohashLen = %d", seg.GeohashLen())
		}
		if seg.NumRows() != len(posts) {
			t.Fatalf("NumRows = %d, want %d", seg.NumRows(), len(posts))
		}
		if seg.MinSID() != posts[0].SID || seg.MaxSID() != posts[len(posts)-1].SID {
			t.Fatalf("SID range [%d,%d]", seg.MinSID(), seg.MaxSID())
		}
		want := oraclePostings(posts, geohashLen)
		if seg.NumKeys() != len(want) {
			t.Fatalf("NumKeys = %d, want %d", seg.NumKeys(), len(want))
		}
		for k, ps := range want {
			got, err := seg.FetchPostings(k.Geohash, k.Term)
			if err != nil {
				t.Fatalf("FetchPostings(%v): %v", k, err)
			}
			if !reflect.DeepEqual(got, ps) {
				t.Fatalf("postings for %v: got %v, want %v", k, got, ps)
			}
			it, err := seg.OpenPostings(k.Geohash, k.Term)
			if err != nil {
				t.Fatalf("OpenPostings(%v): %v", k, err)
			}
			var lazy []invindex.Posting
			for it.Valid() {
				p, ok := it.Cur()
				if !ok {
					break
				}
				lazy = append(lazy, p)
				it.Next()
			}
			if it.Err() != nil {
				t.Fatalf("iterator error for %v: %v", k, it.Err())
			}
			if !reflect.DeepEqual(lazy, ps) {
				t.Fatalf("lazy postings for %v: got %v, want %v", k, lazy, ps)
			}
		}
		if ps, err := seg.FetchPostings("zzzzz", "absent"); err != nil || ps != nil {
			t.Fatalf("absent key: %v, %v", ps, err)
		}
		for _, p := range posts {
			m, ok := seg.LookupRowMeta(p.SID)
			if !ok || m.UID != p.UID || m.Lat != p.Loc.Lat || m.Lon != p.Loc.Lon {
				t.Fatalf("LookupRowMeta(%d) = %+v, %v", p.SID, m, ok)
			}
		}
		if _, ok := seg.LookupRowMeta(posts[0].SID + 1); ok {
			t.Fatal("LookupRowMeta found a SID between rows")
		}
	}

	seg, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	check(seg)

	// Through a file: mmap'd open must serve identical bytes.
	path := filepath.Join(t.TempDir(), "seg-00000001.tkseg")
	if err := writeTestFile(path, data); err != nil {
		t.Fatal(err)
	}
	mseg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mseg.Close()
	check(mseg)
	if mseg.MappedBytes() != len(data) && mseg.MappedBytes() != 0 {
		t.Fatalf("MappedBytes = %d", mseg.MappedBytes())
	}
}

func TestStoreSealCompactReopen(t *testing.T) {
	const geohashLen = 5
	dir := t.TempDir()
	// One-hour buckets, posts stepping 10 minutes: ~6 posts per bucket.
	opts := Options{GeohashLen: geohashLen, BucketWidth: time.Hour, BlockSize: 8, CompactFanIn: 2}
	st, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	posts := testPosts(60, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), 10*time.Minute)
	for _, p := range posts {
		if _, err := st.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SealNow(); err != nil {
		t.Fatal(err)
	}
	want := oraclePostings(posts, geohashLen)
	if got := sealedPostings(t, st); !reflect.DeepEqual(got, want) {
		t.Fatalf("sealed postings diverge from oracle")
	}
	nBefore := st.SegmentCount()
	if nBefore < 5 {
		t.Fatalf("expected several bucket segments, got %d", nBefore)
	}

	merged, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if merged == 0 || st.SegmentCount() >= nBefore {
		t.Fatalf("compaction merged %d, count %d -> %d", merged, nBefore, st.SegmentCount())
	}
	if got := sealedPostings(t, st); !reflect.DeepEqual(got, want) {
		t.Fatalf("postings changed across compaction")
	}
	for _, p := range posts {
		if m, ok := st.LookupRowMeta(p.SID); !ok || m.UID != p.UID {
			t.Fatalf("LookupRowMeta(%d) after compaction = %+v, %v", p.SID, m, ok)
		}
	}
	if st.Seals() == 0 || st.Compactions() == 0 {
		t.Fatalf("counters: seals=%d compactions=%d", st.Seals(), st.Compactions())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: same contents, same watermark.
	st2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := sealedPostings(t, st2); !reflect.DeepEqual(got, want) {
		t.Fatalf("postings diverge after reopen")
	}
	if st2.MaxSealedSID() != posts[len(posts)-1].SID {
		t.Fatalf("MaxSealedSID = %d", st2.MaxSealedSID())
	}
	if st2.MappedBytes() == 0 {
		t.Fatal("expected reopened segments to be mmap'd")
	}
}

func TestStoreBulkLoadMatchesIncremental(t *testing.T) {
	const geohashLen = 5
	posts := testPosts(80, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), 7*time.Minute)
	opts := Options{GeohashLen: geohashLen, BucketWidth: time.Hour, BlockSize: 8}

	bulk, err := OpenStore(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	all := oraclePostings(posts, geohashLen)
	if err := bulk.BulkLoad(rowsOf(posts), all); err != nil {
		t.Fatal(err)
	}

	incr, err := OpenStore(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer incr.Close()
	for _, p := range posts {
		if _, err := incr.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := incr.SealNow(); err != nil {
		t.Fatal(err)
	}

	if bulk.SegmentCount() != incr.SegmentCount() {
		t.Fatalf("bulk %d segments, incremental %d", bulk.SegmentCount(), incr.SegmentCount())
	}
	if !reflect.DeepEqual(sealedPostings(t, bulk), sealedPostings(t, incr)) {
		t.Fatal("bulk-loaded store diverges from incrementally sealed store")
	}
	if !reflect.DeepEqual(sealedPostings(t, bulk), all) {
		t.Fatal("bulk-loaded store diverges from oracle")
	}
}

func TestStoreRejectsWrongGeohashLen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, Options{GeohashLen: 5, BucketWidth: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	posts := testPosts(5, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), time.Second)
	for _, p := range posts {
		if _, err := st.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SealNow(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := OpenStore(dir, Options{GeohashLen: 4, BucketWidth: time.Hour}); err == nil {
		t.Fatal("expected geohash-length mismatch to fail open")
	}
}

// rowsOf converts posts to row records the way ingest does.
func rowsOf(posts []*social.Post) (rows []metadb.Row) {
	for _, p := range posts {
		rows = append(rows, metadb.Row{
			SID: p.SID, UID: p.UID,
			Lat: p.Loc.Lat, Lon: p.Loc.Lon,
			RUID: p.RUID, RSID: p.RSID,
		})
	}
	return rows
}

// writeTestFile writes bytes without the fsx hooks (test fixture setup,
// not a store operation).
func writeTestFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
