package segment

import (
	"fmt"
	"sync"

	"repro/internal/geo"
	"repro/internal/invindex"
	"repro/internal/metadb"
	"repro/internal/social"
)

// Memtable is the mutable head of the storage engine: ingested posts are
// indexed here immediately and served alongside the sealed segments until
// the store seals the table into a segment file. Indexing mirrors the
// batch build's map phase exactly — term frequencies per post, keys of
// ⟨geohash(loc), term⟩ at the store's precision, postings in ascending
// TID order (ingest arrives in timestamp order) — so a sealed segment is
// byte-equivalent to what a batch rebuild over the same posts would have
// produced for its time range.
//
// Readers (the engine's postings fetches) and the single writer (ingest,
// which the store serializes) synchronize on one RWMutex. Postings slices
// returned to readers are never mutated in place: appends only extend
// them past the length a reader captured, and TFs are fixed at insert.
type Memtable struct {
	geohashLen int

	mu       sync.RWMutex
	rows     []metadb.Row
	postings map[invindex.Key][]invindex.Posting
	bytes    int // rough payload size, for size-based seal thresholds
}

// NewMemtable creates an empty memtable keyed at the given geohash
// precision.
func NewMemtable(geohashLen int) *Memtable {
	return &Memtable{
		geohashLen: geohashLen,
		postings:   make(map[invindex.Key][]invindex.Posting),
	}
}

// Add indexes one post. Posts must arrive in ascending SID order (IDs are
// timestamps), the same contract metadb.Append enforces.
func (m *Memtable) Add(p *social.Post) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.rows); n > 0 && p.SID <= m.rows[n-1].SID {
		return fmt.Errorf("segment: memtable add SID %d is not beyond %d (posts arrive in timestamp order)",
			p.SID, m.rows[n-1].SID)
	}
	m.rows = append(m.rows, metadb.Row{
		SID: p.SID, UID: p.UID,
		Lat: p.Loc.Lat, Lon: p.Loc.Lon,
		RUID: p.RUID, RSID: p.RSID,
	})
	m.bytes += rowSize
	if len(p.Words) == 0 {
		return nil
	}
	// The batch build's mapper: term frequency per post, one posting per
	// distinct ⟨cell, term⟩ key.
	tf := make(map[string]uint32, len(p.Words))
	for _, w := range p.Words {
		tf[w]++
	}
	cell := geo.Encode(p.Loc, m.geohashLen)
	for term, f := range tf {
		key := invindex.Key{Geohash: cell, Term: term}
		m.postings[key] = append(m.postings[key], invindex.Posting{TID: p.SID, TF: f})
		m.bytes += 16
	}
	return nil
}

// Len returns the number of buffered rows.
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows)
}

// SizeBytes returns the approximate buffered payload size.
func (m *Memtable) SizeBytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// GeohashLen returns the precision the memtable keys at — the engine's
// PostingsSource contract.
func (m *Memtable) GeohashLen() int { return m.geohashLen }

// FetchPostings returns the buffered postings for ⟨geohash, term⟩, nil
// when the key has none — the same contract as the index and the sealed
// segments. The returned slice is aliasing-safe: the writer only appends
// beyond the captured length and never rewrites existing entries.
func (m *Memtable) FetchPostings(geohash, term string) ([]invindex.Posting, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.postings[invindex.Key{Geohash: geohash, Term: term}], nil
}

// LookupRowMeta serves the row-metadata leg for still-unsealed posts.
func (m *Memtable) LookupRowMeta(sid social.PostID) (metadb.RowMeta, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	lo, hi := 0, len(m.rows)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.rows[mid].SID < sid:
			lo = mid + 1
		case m.rows[mid].SID > sid:
			hi = mid
		default:
			r := m.rows[mid]
			return metadb.RowMeta{Lat: r.Lat, Lon: r.Lon, UID: r.UID}, true
		}
	}
	return metadb.RowMeta{}, false
}

// snapshot returns the rows and the sorted, blocked-encoded postings of
// the current contents — the seal input. Caller is the store, which
// serializes seals; the read lock still guards against concurrent Adds
// from a misuse path.
func (m *Memtable) snapshot(blockSize int) ([]metadb.Row, []keyPostings, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rows := make([]metadb.Row, len(m.rows))
	copy(rows, m.rows)
	enc := make(map[invindex.Key][]byte, len(m.postings))
	for k, ps := range m.postings {
		payload, err := invindex.EncodeBlockedPostingsList(ps, blockSize)
		if err != nil {
			return nil, nil, fmt.Errorf("segment: encoding postings for %q: %w", k.String(), err)
		}
		enc[k] = payload
	}
	return rows, sortKeyPostings(enc), nil
}

// bounds returns the buffered SID range; ok is false when empty.
func (m *Memtable) bounds() (min, max social.PostID, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.rows) == 0 {
		return 0, 0, false
	}
	return m.rows[0].SID, m.rows[len(m.rows)-1].SID, true
}
