// Package kendall implements the Kendall tau rank-correlation variant of
// Section VI-B3, used to compare the top-k results of the sum-score and
// maximum-score user rankings. Because the two result lists may contain
// different users, each ranking is first extended with the other's missing
// elements, all sharing the next ordinal rank (the paper's example: k = 3,
// ρ_b = ⟨A,B,C⟩ and ρ_d = ⟨B,D,E⟩ become ⟨A,B,C,D,E⟩ and ⟨B,D,E,A,C⟩ with
// D and E both ranked 4th in ρ_b, A and C both 4th in ρ_d).
package kendall

// TauVariant computes the padded-ranking Kendall tau coefficient between
// two rankings of item IDs. Each input must be duplicate-free. A pair is
// concordant when both rankings order it the same way — "before, after or
// in tie with" agreeing in both — and discordant when the rankings order it
// strictly oppositely; a tie in exactly one ranking is neither. The
// coefficient is (cp − dp) / (0.5·n·(n−1)) over the n items of the union,
// so identical rankings score 1 and exact reversals −1.
func TauVariant(a, b []int64) float64 {
	rankA := paddedRanks(a, b)
	rankB := paddedRanks(b, a)
	if len(rankA) < 2 {
		return 1 // zero or one item: the rankings trivially agree
	}
	ids := make([]int64, 0, len(rankA))
	for id := range rankA {
		ids = append(ids, id)
	}
	var cp, dp int
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			da := rankA[ids[i]] - rankA[ids[j]]
			db := rankB[ids[i]] - rankB[ids[j]]
			switch {
			case sign(da) == sign(db):
				cp++
			case da != 0 && db != 0:
				dp++
			}
		}
	}
	n := len(ids)
	return float64(cp-dp) / (0.5 * float64(n) * float64(n-1))
}

// paddedRanks assigns 1-based ranks to the items of primary, then gives
// every item of other that is missing from primary the shared ordinal rank
// len(primary)+1.
func paddedRanks(primary, other []int64) map[int64]int {
	ranks := make(map[int64]int, len(primary)+len(other))
	for i, id := range primary {
		ranks[id] = i + 1
	}
	tieRank := len(primary) + 1
	for _, id := range other {
		if _, ok := ranks[id]; !ok {
			ranks[id] = tieRank
		}
	}
	return ranks
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
