package kendall

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdenticalRankings(t *testing.T) {
	for _, r := range [][]int64{{1}, {1, 2}, {5, 4, 3, 2, 1}, {}} {
		if got := TauVariant(r, r); got != 1 {
			t.Errorf("TauVariant(x, x) = %v for %v, want 1", got, r)
		}
	}
}

func TestExactReversal(t *testing.T) {
	a := []int64{1, 2, 3, 4, 5}
	b := []int64{5, 4, 3, 2, 1}
	if got := TauVariant(a, b); got != -1 {
		t.Errorf("reversal tau = %v, want -1", got)
	}
}

func TestPaperExample(t *testing.T) {
	// k=3, ρ_b = ⟨A,B,C⟩, ρ_d = ⟨B,D,E⟩ (A=1, B=2, C=3, D=4, E=5).
	// Padded: ρ_b = A:1 B:2 C:3 D:4 E:4 ; ρ_d = B:1 D:2 E:3 A:4 C:4.
	// Pairs (10 total):
	//  AB: b says A<B, d says A>B -> discordant
	//  AC: b A<C, d tie          -> neither
	//  AD: b A<D, d A>D          -> discordant
	//  AE: b A<E, d A>E          -> discordant
	//  BC: b B<C, d B<C          -> concordant
	//  BD: b B<D, d B<D          -> concordant
	//  BE: b B<E, d B<E          -> concordant
	//  CD: b C<D, d C>D          -> discordant
	//  CE: b C<E, d C>E          -> discordant
	//  DE: b tie, d D<E          -> neither
	// cp=3, dp=5, n=5 -> tau = (3-5)/10 = -0.2.
	a := []int64{1, 2, 3}
	b := []int64{2, 4, 5}
	if got := TauVariant(a, b); math.Abs(got-(-0.2)) > 1e-12 {
		t.Errorf("paper example tau = %v, want -0.2", got)
	}
}

func TestPartialOverlapHighAgreement(t *testing.T) {
	// Same first four of five, last element differs: tau should be high
	// but below 1.
	a := []int64{1, 2, 3, 4, 5}
	b := []int64{1, 2, 3, 4, 6}
	got := TauVariant(a, b)
	if got <= 0.5 || got >= 1 {
		t.Errorf("near-identical rankings tau = %v, want in (0.5, 1)", got)
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		a := randomRanking(rng, 5, 20)
		b := randomRanking(rng, 5, 20)
		ab, ba := TauVariant(a, b), TauVariant(b, a)
		if math.Abs(ab-ba) > 1e-12 {
			t.Fatalf("asymmetric: tau(a,b)=%v tau(b,a)=%v for %v %v", ab, ba, a, b)
		}
	}
}

func TestRangeProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		a := randomRanking(rngA, 1, 15)
		b := randomRanking(rngB, 1, 15)
		tau := TauVariant(a, b)
		return tau >= -1-1e-12 && tau <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointRankings(t *testing.T) {
	// Completely disjoint top-k lists: every cross pair has the added
	// elements tied, so concordance comes only from within-list pairs
	// ordered consistently against the other list's ties.
	a := []int64{1, 2, 3}
	b := []int64{4, 5, 6}
	got := TauVariant(a, b)
	if got < -1 || got > 1 {
		t.Fatalf("tau out of range: %v", got)
	}
	// Within-list pairs: (1,2): a strict, b ties -> neither. All 15 pairs
	// are either one-sided ties or opposite strict orders... compute: pairs
	// between a-items: tie in b -> neither (3 pairs). Same for b-items (3).
	// Cross pairs (9): a says a-item < b-item (rank i vs 4); b says a-item
	// (rank 4) > b-item -> discordant when b-item rank < 4, i.e. always.
	// cp=0, dp=9, n=6 -> tau = -9/15 = -0.6.
	if math.Abs(got-(-0.6)) > 1e-12 {
		t.Errorf("disjoint tau = %v, want -0.6", got)
	}
}

func TestSingletonAndEmpty(t *testing.T) {
	if got := TauVariant([]int64{7}, []int64{7}); got != 1 {
		t.Errorf("singleton tau = %v", got)
	}
	if got := TauVariant(nil, nil); got != 1 {
		t.Errorf("empty tau = %v", got)
	}
	// One vs other singleton: union of 2, cross pair: a: 7<9 (9 padded to
	// rank 2), b: 7 padded rank 2, 9 rank 1 -> discordant. tau = -1.
	if got := TauVariant([]int64{7}, []int64{9}); got != -1 {
		t.Errorf("disjoint singletons tau = %v, want -1", got)
	}
}

func randomRanking(rng *rand.Rand, minLen, maxID int) []int64 {
	n := rng.Intn(8) + minLen
	perm := rng.Perm(maxID)
	out := make([]int64, 0, n)
	for _, p := range perm[:n] {
		out = append(out, int64(p))
	}
	return out
}
