package invindex

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/social"
)

// testCorpus generates n deterministic posts scattered over a small area
// with a skewed vocabulary, so some ⟨cell, term⟩ keys gather postings lists
// long enough to span several blocks.
func testCorpus(t *testing.T, n int) []*social.Post {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	words := []string{"hotel", "pizza", "beach", "music", "rain"}
	posts := make([]*social.Post, 0, n)
	for i := 0; i < n; i++ {
		w := []string{words[rng.Intn(2)]} // skew: most posts share two terms
		if rng.Intn(3) == 0 {
			w = append(w, words[2+rng.Intn(3)])
		}
		posts = append(posts, &social.Post{
			SID: social.PostID(i + 1), UID: social.UserID(1 + rng.Intn(20)),
			Time: time.Unix(int64(i+1), 0),
			Loc: geo.Point{
				Lat: 43.68 + rng.Float64()*0.02,
				Lon: -79.38 + rng.Float64()*0.02,
			},
			Words: w,
		})
	}
	return posts
}

func randomPostings(rng *rand.Rand, n int) []Posting {
	ps := make([]Posting, 0, n)
	tid := social.PostID(0)
	for i := 0; i < n; i++ {
		tid += social.PostID(1 + rng.Intn(1000))
		ps = append(ps, Posting{TID: tid, TF: uint32(1 + rng.Intn(9))})
	}
	return ps
}

func TestBlockedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 127, 128, 129, 1000} {
		for _, bs := range []int{0, 1, 8, 128} {
			ps := randomPostings(rng, n)
			enc, err := EncodeBlockedPostingsList(ps, bs)
			if err != nil {
				t.Fatalf("n=%d bs=%d: encode: %v", n, bs, err)
			}
			count, err := PostingsListCount(enc)
			if err != nil || count != n {
				t.Fatalf("n=%d bs=%d: header count %d err %v", n, bs, count, err)
			}
			dec, err := DecodeBlockedPostingsList(enc)
			if err != nil {
				t.Fatalf("n=%d bs=%d: decode: %v", n, bs, err)
			}
			if len(dec) != len(ps) {
				t.Fatalf("n=%d bs=%d: got %d postings", n, bs, len(dec))
			}
			for i := range dec {
				if dec[i] != ps[i] {
					t.Fatalf("n=%d bs=%d: posting %d = %v, want %v", n, bs, i, dec[i], ps[i])
				}
			}
		}
	}
}

func TestBlockedRejectsUnsorted(t *testing.T) {
	ps := []Posting{{TID: 5, TF: 1}, {TID: 5, TF: 2}}
	if _, err := EncodeBlockedPostingsList(ps, 0); err == nil {
		t.Fatal("duplicate TIDs encoded without error")
	}
	ps[1].TID = 4
	if _, err := EncodeBlockedPostingsList(ps, 0); err == nil {
		t.Fatal("descending TIDs encoded without error")
	}
}

// TestBlockMetadataExact checks every directory entry against the true
// per-block extrema: the metadata traversal trusts for skipping must be
// exact, not merely an upper bound, at encode time.
func TestBlockMetadataExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := randomPostings(rng, 500)
	const bs = 64
	enc, err := EncodeBlockedPostingsList(ps, bs)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewBlockedIterator(enc)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(ps); start += bs {
		end := start + bs
		if end > len(ps) {
			end = len(ps)
		}
		blk := ps[start:end]
		info, ok := it.BlockMax()
		if !ok {
			t.Fatalf("iterator exhausted at block starting %d", start)
		}
		var maxTF uint32
		for _, p := range blk {
			if p.TF > maxTF {
				maxTF = p.TF
			}
		}
		if info.Count != len(blk) || info.MinSID != blk[0].TID ||
			info.MaxSID != blk[len(blk)-1].TID || info.MaxTF != maxTF {
			t.Fatalf("block %d metadata %+v, want count=%d min=%d max=%d maxTF=%d",
				info.Index, info, len(blk), blk[0].TID, blk[len(blk)-1].TID, maxTF)
		}
		if !it.SkipBlock() && end != len(ps) {
			t.Fatalf("iterator ended early at %d", end)
		}
	}
}

// TestIteratorNextEquivalence walks the iterator posting by posting and
// compares against the eager decode.
func TestIteratorNextEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, bs := range []int{1, 3, 8, 128} {
		ps := randomPostings(rng, 300)
		enc, err := EncodeBlockedPostingsList(ps, bs)
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewBlockedIterator(enc)
		if err != nil {
			t.Fatal(err)
		}
		if it.Len() != len(ps) {
			t.Fatalf("bs=%d: Len=%d, want %d", bs, it.Len(), len(ps))
		}
		for i := 0; ; i++ {
			p, ok := it.Cur()
			if !ok {
				if i != len(ps) {
					t.Fatalf("bs=%d: iterator ended at %d of %d", bs, i, len(ps))
				}
				break
			}
			if p != ps[i] {
				t.Fatalf("bs=%d: posting %d = %v, want %v", bs, i, p, ps[i])
			}
			it.Next()
		}
		if err := it.Err(); err != nil {
			t.Fatalf("bs=%d: iterator error: %v", bs, err)
		}
	}
}

// TestIteratorSkipToEquivalence drives SkipTo with random targets and
// checks each landing position against a linear scan of the decoded list,
// for both blocked and flat (slice) iterators.
func TestIteratorSkipToEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		ps := randomPostings(rng, 1+rng.Intn(400))
		bs := 1 + rng.Intn(64)
		enc, err := EncodeBlockedPostingsList(ps, bs)
		if err != nil {
			t.Fatal(err)
		}
		blocked, err := NewBlockedIterator(enc)
		if err != nil {
			t.Fatal(err)
		}
		flat := NewSliceIterator(ps)
		maxTID := ps[len(ps)-1].TID
		target := social.PostID(0)
		for _, it := range []*PostingsIterator{blocked, flat} {
			target = 0
			linear := 0
			for {
				target += social.PostID(1 + rng.Intn(int(maxTID)/8+1))
				ok := it.SkipTo(target)
				for linear < len(ps) && ps[linear].TID < target {
					linear++
				}
				if linear >= len(ps) {
					if ok {
						p, _ := it.Cur()
						t.Fatalf("trial %d: SkipTo(%d) found %v past end", trial, target, p)
					}
					break
				}
				if !ok {
					t.Fatalf("trial %d: SkipTo(%d) exhausted, want %v", trial, target, ps[linear])
				}
				p, _ := it.Cur()
				if p != ps[linear] {
					t.Fatalf("trial %d: SkipTo(%d) = %v, want %v", trial, target, p, ps[linear])
				}
				// Occasionally interleave Next to move the cursor mid-block;
				// it consumes the current posting even when it exhausts.
				if rng.Intn(3) == 0 {
					it.Next()
					linear++
				}
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestIteratorSkipAccounting exercises the decode-avoidance counters: a
// skip over the whole list must credit every untouched block.
func TestIteratorSkipAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ps := randomPostings(rng, 256)
	enc, err := EncodeBlockedPostingsList(ps, 32)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewBlockedIterator(enc)
	if err != nil {
		t.Fatal(err)
	}
	it.SkipTo(math.MaxInt64)
	st := it.Stats()
	if st.BlocksSkipped != 8 || st.PostingsSkipped != 256 || st.BlocksDecoded != 0 {
		t.Fatalf("full skip stats %+v, want 8 blocks / 256 postings skipped, 0 decoded", st)
	}

	// Touch the first block, then skip: the touched block must not be
	// counted as skipped.
	it2, err := NewBlockedIterator(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it2.Cur(); !ok {
		t.Fatal("Cur on fresh iterator failed")
	}
	it2.SkipTo(math.MaxInt64)
	st = it2.Stats()
	if st.BlocksSkipped != 7 || st.PostingsSkipped != 224 || st.BlocksDecoded != 1 {
		t.Fatalf("partial skip stats %+v, want 7/224 skipped, 1 decoded", st)
	}
}

// TestFlatIteratorCompat checks the single-block compatibility path used
// for flat lists and in-memory postings sources.
func TestFlatIteratorCompat(t *testing.T) {
	if it := NewSliceIterator(nil); it.Valid() || it.Len() != 0 {
		t.Fatal("empty slice iterator should start exhausted")
	}
	ps := []Posting{{TID: 3, TF: 2}, {TID: 9, TF: 5}, {TID: 12, TF: 1}}
	it := NewSliceIterator(ps)
	info, ok := it.BlockMax()
	if !ok || info.Count != 3 || info.MinSID != 3 || info.MaxSID != 12 || info.MaxTF != 5 {
		t.Fatalf("flat BlockMax = %+v ok=%v", info, ok)
	}
	if !it.SkipTo(9) {
		t.Fatal("SkipTo(9) failed")
	}
	if p, _ := it.Cur(); p.TID != 9 {
		t.Fatalf("SkipTo(9) landed on %v", p)
	}
}

// TestFetchDispatch builds one index blocked and one flat over the same
// corpus and checks FetchPostings and OpenPostings agree between formats.
func TestFetchDispatch(t *testing.T) {
	posts := testCorpus(t, 300)
	fsB := dfs.New(dfs.DefaultOptions())
	fsF := dfs.New(dfs.DefaultOptions())
	optsB := DefaultBuildOptions()
	optsB.BlockSize = 16 // small blocks so multi-block lists exist
	optsF := DefaultBuildOptions()
	optsF.FlatPostings = true
	idxB, _, err := Build(fsB, posts, optsB)
	if err != nil {
		t.Fatal(err)
	}
	idxF, _, err := Build(fsF, posts, optsF)
	if err != nil {
		t.Fatal(err)
	}
	keys := idxB.Keys()
	if len(keys) == 0 {
		t.Fatal("no keys built")
	}
	for _, k := range keys {
		pb, err := idxB.FetchPostings(k.Geohash, k.Term)
		if err != nil {
			t.Fatalf("%v: blocked fetch: %v", k, err)
		}
		pf, err := idxF.FetchPostings(k.Geohash, k.Term)
		if err != nil {
			t.Fatalf("%v: flat fetch: %v", k, err)
		}
		if len(pb) != len(pf) {
			t.Fatalf("%v: blocked %d postings, flat %d", k, len(pb), len(pf))
		}
		for i := range pb {
			if pb[i] != pf[i] {
				t.Fatalf("%v: posting %d differs: %v vs %v", k, i, pb[i], pf[i])
			}
		}
		if got := idxB.PostingsCount(k.Geohash, k.Term); got != len(pb) {
			t.Fatalf("%v: PostingsCount %d, want %d", k, got, len(pb))
		}
		// The lazy iterator must yield the same sequence.
		it, err := idxB.OpenPostings(k.Geohash, k.Term)
		if err != nil {
			t.Fatalf("%v: open: %v", k, err)
		}
		for i := 0; ; i++ {
			p, ok := it.Cur()
			if !ok {
				if i != len(pb) {
					t.Fatalf("%v: iterator ended at %d of %d", k, i, len(pb))
				}
				break
			}
			if p != pb[i] {
				t.Fatalf("%v: iterator posting %d = %v, want %v", k, i, p, pb[i])
			}
			it.Next()
		}
	}
}

// TestPersistBlockedRoundTrip saves a blocked index and reloads it,
// checking the blocked flag survives (skipping still works after reload).
func TestPersistBlockedRoundTrip(t *testing.T) {
	posts := testCorpus(t, 200)
	fsys := dfs.New(dfs.DefaultOptions())
	opts := DefaultBuildOptions()
	opts.BlockSize = 16
	idx, _, err := Build(fsys, posts, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.SaveForward(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("TKFWD2")) {
		t.Fatalf("saved magic %q, want TKFWD2 prefix", buf.Bytes()[:6])
	}
	loaded, err := LoadIndex(fsys, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range idx.Keys() {
		want, err := idx.FetchPostings(k.Geohash, k.Term)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.FetchPostings(k.Geohash, k.Term)
		if err != nil {
			t.Fatalf("%v: fetch after reload: %v", k, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: reload %d postings, want %d", k, len(got), len(want))
		}
		it, err := loaded.OpenPostings(k.Geohash, k.Term)
		if err != nil || it == nil {
			t.Fatalf("%v: open after reload: %v", k, err)
		}
		if it.Len() != len(want) {
			t.Fatalf("%v: reloaded iterator Len %d, want %d", k, it.Len(), len(want))
		}
	}
}

// TestLoadIndexV1Compat hand-writes a TKFWD1 stream (no flags field) and
// checks it still loads, with every entry treated as flat.
func TestLoadIndexV1Compat(t *testing.T) {
	fsys := dfs.New(dfs.DefaultOptions())
	ps := []Posting{{TID: 1, TF: 1}, {TID: 4, TF: 2}}
	enc, err := EncodePostingsList(ps)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsys.Create("index/part-00000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(enc); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	buf.WriteString("TKFWD1")
	wv := func(v uint64) {
		var tmp [10]byte
		n := 0
		for {
			b := byte(v & 0x7f)
			v >>= 7
			if v != 0 {
				tmp[n] = b | 0x80
			} else {
				tmp[n] = b
			}
			n++
			if v == 0 {
				break
			}
		}
		buf.Write(tmp[:n])
	}
	ws := func(s string) { wv(uint64(len(s))); buf.WriteString(s) }
	wv(4) // geohash length
	wv(1) // entries
	ws("gbsu")
	ws("pub")
	ws("index/part-00000")
	wv(0)                // offset
	wv(uint64(len(enc))) // length
	wv(2)                // count
	// no flags field in v1

	idx, err := LoadIndex(fsys, &buf)
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	got, err := idx.FetchPostings("gbsu", "pub")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ps[0] || got[1] != ps[1] {
		t.Fatalf("v1 postings %v, want %v", got, ps)
	}
	it, err := idx.OpenPostings("gbsu", "pub")
	if err != nil || it == nil || it.Len() != 2 {
		t.Fatalf("v1 open: it=%v err=%v", it, err)
	}
}

// TestDecodeBlockedCorruption checks the decoder rejects mangled payloads
// instead of panicking or fabricating postings.
func TestDecodeBlockedCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ps := randomPostings(rng, 200)
	enc, err := EncodeBlockedPostingsList(ps, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		for delta := byte(1); delta < 255; delta += 97 {
			mut := bytes.Clone(enc)
			mut[i] += delta
			dec, err := DecodeBlockedPostingsList(mut)
			if err != nil {
				continue
			}
			// A mutation may survive decoding only by landing on another
			// self-consistent list; it must still be strictly sorted.
			for j := 1; j < len(dec); j++ {
				if dec[j].TID <= dec[j-1].TID {
					t.Fatalf("mutation at %d decoded unsorted postings", i)
				}
			}
		}
	}
	for _, trunc := range []int{0, 1, 2, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeBlockedPostingsList(enc[:trunc]); err == nil && trunc < len(enc) {
			t.Fatalf("truncation to %d decoded without error", trunc)
		}
	}
}
