package invindex

import (
	"testing"

	"repro/internal/social"
)

// FuzzDecodePostingsList checks the decoder never panics on arbitrary
// bytes, and that decoding a valid encoding round-trips.
func FuzzDecodePostingsList(f *testing.F) {
	valid, _ := EncodePostingsList([]Posting{{TID: 5, TF: 2}, {TID: 9, TF: 1}})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodePostingsList(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same list
		// (unless the decoded list violates the sortedness invariant, in
		// which case encoding must refuse it).
		var prev social.PostID
		sorted := true
		for i, p := range ps {
			if i > 0 && p.TID <= prev {
				sorted = false
				break
			}
			prev = p.TID
		}
		enc, err := EncodePostingsList(ps)
		if !sorted {
			if err == nil {
				t.Fatal("encoder accepted unsorted postings")
			}
			return
		}
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodePostingsList(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(ps) {
			t.Fatalf("round trip changed length: %d vs %d", len(back), len(ps))
		}
		for i := range ps {
			if back[i] != ps[i] {
				t.Fatalf("round trip changed posting %d", i)
			}
		}
	})
}

// FuzzDecodeBlockedPostingsList checks the blocked decoder never panics on
// arbitrary bytes, that whatever decodes re-encodes losslessly, and that
// the lazy iterator agrees with the eager decode on the same payload.
func FuzzDecodeBlockedPostingsList(f *testing.F) {
	valid, _ := EncodeBlockedPostingsList([]Posting{{TID: 5, TF: 2}, {TID: 9, TF: 1}}, 1)
	f.Add(valid)
	valid2, _ := EncodeBlockedPostingsList([]Posting{{TID: 1, TF: 1}, {TID: 2, TF: 3}, {TID: 900, TF: 7}}, 2)
	f.Add(valid2)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{2, 1, 2, 4, 1, 0, 1})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeBlockedPostingsList(data)
		if err != nil {
			// The iterator must reject the same payloads the eager decoder
			// rejects, either at open or while advancing.
			if it, err2 := NewBlockedIterator(data); err2 == nil {
				for it.Valid() {
					if _, ok := it.Cur(); !ok {
						break
					}
					it.Next()
				}
			}
			return
		}
		// The decoder only accepts strictly sorted lists (zero deltas are
		// rejected), so re-encoding must succeed and round-trip.
		enc, err := EncodeBlockedPostingsList(ps, 3)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodeBlockedPostingsList(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(ps) {
			t.Fatalf("round trip changed length: %d vs %d", len(back), len(ps))
		}
		for i := range ps {
			if back[i] != ps[i] {
				t.Fatalf("round trip changed posting %d", i)
			}
		}
		it, err := NewBlockedIterator(data)
		if err != nil {
			t.Fatalf("iterator rejected payload the decoder accepted: %v", err)
		}
		for i := 0; ; i++ {
			p, ok := it.Cur()
			if !ok {
				if it.Err() != nil {
					t.Fatalf("iterator errored on accepted payload: %v", it.Err())
				}
				if i != len(ps) {
					t.Fatalf("iterator yielded %d postings, decoder %d", i, len(ps))
				}
				break
			}
			if p != ps[i] {
				t.Fatalf("iterator posting %d = %v, decoder %v", i, p, ps[i])
			}
			it.Next()
		}
	})
}

// FuzzParseKey checks the key parser never panics and inverts String for
// valid keys.
func FuzzParseKey(f *testing.F) {
	f.Add("6gxp\x00restaur")
	f.Add("")
	f.Add("\x00")
	f.Add("no-separator")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKey(s)
		if err != nil {
			return
		}
		if k.String() != s {
			// Geohash parts containing NULs re-serialize differently;
			// the index never produces such keys, but parsing must stay
			// total and non-panicking, which it did.
			t.Skip()
		}
	})
}
