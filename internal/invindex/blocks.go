package invindex

// Block-max postings layout. A blocked postings list carves the TID-sorted
// postings into fixed-size blocks (DefaultBlockSize entries) and prefixes
// them with a directory of per-block metadata — entry count, min/max tweet
// ID and max term frequency — so traversal can reason about a block (and
// skip it wholesale) without decoding it. This is the in-memory/DFS
// precursor of the on-disk immutable-segment block header: the directory is
// exactly what a segment's skip index will persist.
//
// Wire layout (referenced by an entryRef with the blocked flag set; the
// flat layout of EncodePostingsList remains the compatibility/oracle path):
//
//	uvarint total                  // postings in the whole list
//	uvarint nblocks
//	nblocks × directory entry:
//	    uvarint count              // postings in this block (1..blockSize)
//	    uvarint dataLen            // encoded byte length of the block body
//	    uvarint minDelta           // minSID − previous block's maxSID
//	    uvarint span               // maxSID − minSID
//	    uvarint maxTF
//	nblocks × block body:
//	    uvarint tf                 // first posting; its TID is minSID
//	    (count−1) × { uvarint tidDelta (>0), uvarint tf }
//
// Both layouts lead with the same uvarint total, so PostingsListCount reads
// the length of either without decoding any entries.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/social"
)

// DefaultBlockSize is the postings-per-block target of the blocked layout.
// 128 keeps a block within a few hundred bytes (one cache-friendly decode
// unit) while making the directory ~1% of the list.
const DefaultBlockSize = 128

// BlockInfo is the decoded directory entry of one postings block: the
// metadata traversal may consult without decoding the block body.
type BlockInfo struct {
	Index  int           // block ordinal within the list
	Count  int           // postings in the block
	MinSID social.PostID // first (smallest) TID in the block
	MaxSID social.PostID // last (largest) TID in the block
	MaxTF  uint32        // largest term frequency in the block
}

// blockRef is BlockInfo plus the block body's location inside the payload.
type blockRef struct {
	count          int
	minSID, maxSID social.PostID
	maxTF          uint32
	off, length    int
}

// EncodeBlockedPostingsList serializes a TID-sorted postings list in the
// blocked layout with the given block size (non-positive selects
// DefaultBlockSize).
func EncodeBlockedPostingsList(ps []Posting, blockSize int) ([]byte, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].TID <= ps[i-1].TID {
			return nil, fmt.Errorf("invindex: postings not strictly sorted at %d (%d after %d)",
				i, ps[i].TID, ps[i-1].TID)
		}
	}
	nblocks := (len(ps) + blockSize - 1) / blockSize

	// Encode the block bodies first; the directory needs their lengths.
	type blockMeta struct {
		count          int
		minSID, maxSID social.PostID
		maxTF          uint32
		body           []byte
	}
	metas := make([]blockMeta, 0, nblocks)
	for start := 0; start < len(ps); start += blockSize {
		end := start + blockSize
		if end > len(ps) {
			end = len(ps)
		}
		blk := ps[start:end]
		m := blockMeta{count: len(blk), minSID: blk[0].TID, maxSID: blk[len(blk)-1].TID}
		body := make([]byte, 0, len(blk)*3)
		body = binary.AppendUvarint(body, uint64(blk[0].TF))
		m.maxTF = blk[0].TF
		for i := 1; i < len(blk); i++ {
			body = binary.AppendUvarint(body, uint64(blk[i].TID-blk[i-1].TID))
			body = binary.AppendUvarint(body, uint64(blk[i].TF))
			if blk[i].TF > m.maxTF {
				m.maxTF = blk[i].TF
			}
		}
		m.body = body
		metas = append(metas, m)
	}

	buf := make([]byte, 0, 16+len(ps)*3)
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	buf = binary.AppendUvarint(buf, uint64(len(metas)))
	var prevMax social.PostID
	for _, m := range metas {
		buf = binary.AppendUvarint(buf, uint64(m.count))
		buf = binary.AppendUvarint(buf, uint64(len(m.body)))
		buf = binary.AppendUvarint(buf, uint64(m.minSID-prevMax))
		buf = binary.AppendUvarint(buf, uint64(m.maxSID-m.minSID))
		buf = binary.AppendUvarint(buf, uint64(m.maxTF))
		prevMax = m.maxSID
	}
	for _, m := range metas {
		buf = append(buf, m.body...)
	}
	return buf, nil
}

// parseBlockedDirectory reads the header and directory of a blocked
// payload, returning the total posting count, the block refs (offsets into
// the returned data area) and the data area itself.
func parseBlockedDirectory(b []byte) (int, []blockRef, []byte, error) {
	total, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("invindex: bad blocked postings total")
	}
	b = b[n:]
	nblocks, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("invindex: bad blocked postings block count")
	}
	b = b[n:]
	// Every block costs >= 5 directory bytes plus >= 1 body byte, and every
	// posting >= 1 body byte; reject hostile headers before allocating.
	if nblocks > uint64(len(b))/5 || total > uint64(len(b))+5*nblocks {
		return 0, nil, nil, fmt.Errorf("invindex: blocked header (%d blocks, %d postings) exceeds payload %d",
			nblocks, total, len(b))
	}
	refs := make([]blockRef, 0, nblocks)
	var sum uint64
	var prevMax social.PostID
	dataOff := 0
	for i := uint64(0); i < nblocks; i++ {
		var vals [5]uint64
		for j := range vals {
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, nil, fmt.Errorf("invindex: truncated block directory at %d", i)
			}
			vals[j] = v
			b = b[n:]
		}
		count, length := vals[0], vals[1]
		if count == 0 || count > total || length > uint64(len(b)) {
			return 0, nil, nil, fmt.Errorf("invindex: implausible block %d (count %d, len %d)", i, count, length)
		}
		// Strict global sortedness: block i's minSID must exceed block
		// i-1's maxSID, or a hostile payload could smuggle duplicate TIDs
		// across a block boundary.
		if i > 0 && vals[2] == 0 {
			return 0, nil, nil, fmt.Errorf("invindex: block %d overlaps previous block", i)
		}
		minSID := prevMax + social.PostID(vals[2])
		maxSID := minSID + social.PostID(vals[3])
		if vals[4] > math.MaxUint32 {
			return 0, nil, nil, fmt.Errorf("invindex: block %d maxTF %d overflows", i, vals[4])
		}
		refs = append(refs, blockRef{
			count:  int(count),
			minSID: minSID,
			maxSID: maxSID,
			maxTF:  uint32(vals[4]),
			off:    dataOff,
			length: int(length),
		})
		dataOff += int(length)
		sum += count
		prevMax = maxSID
	}
	if sum != total {
		return 0, nil, nil, fmt.Errorf("invindex: block counts sum %d, header says %d", sum, total)
	}
	if dataOff > len(b) {
		return 0, nil, nil, fmt.Errorf("invindex: block data %d exceeds payload %d", dataOff, len(b))
	}
	return int(total), refs, b, nil
}

// decodeBlock decodes one block body into dst (reused across blocks).
func decodeBlock(data []byte, ref blockRef, dst []Posting) ([]Posting, error) {
	if ref.off+ref.length > len(data) {
		return nil, fmt.Errorf("invindex: block body out of bounds")
	}
	b := data[ref.off : ref.off+ref.length]
	dst = dst[:0]
	tf, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("invindex: truncated block first posting")
	}
	b = b[n:]
	dst = append(dst, Posting{TID: ref.minSID, TF: uint32(tf)})
	prev := ref.minSID
	for i := 1; i < ref.count; i++ {
		delta, n1 := binary.Uvarint(b)
		if n1 <= 0 {
			return nil, fmt.Errorf("invindex: truncated tid at block posting %d", i)
		}
		tf, n2 := binary.Uvarint(b[n1:])
		if n2 <= 0 {
			return nil, fmt.Errorf("invindex: truncated tf at block posting %d", i)
		}
		if delta == 0 {
			return nil, fmt.Errorf("invindex: zero tid delta at block posting %d", i)
		}
		prev += social.PostID(delta)
		dst = append(dst, Posting{TID: prev, TF: uint32(tf)})
		b = b[n1+n2:]
	}
	if prev != ref.maxSID {
		return nil, fmt.Errorf("invindex: block ends at %d, directory says %d", prev, ref.maxSID)
	}
	return dst, nil
}

// DecodeBlockedPostingsList fully decodes a blocked payload. It is the
// eager counterpart of the iterator, used by FetchPostings (the oracle
// path) and by round-trip tests.
func DecodeBlockedPostingsList(b []byte) ([]Posting, error) {
	total, refs, data, err := parseBlockedDirectory(b)
	if err != nil {
		return nil, err
	}
	out := make([]Posting, 0, total)
	var scratch []Posting
	for _, ref := range refs {
		scratch, err = decodeBlock(data, ref, scratch)
		if err != nil {
			return nil, err
		}
		out = append(out, scratch...)
	}
	return out, nil
}

// IterStats reports the decode work a PostingsIterator avoided: blocks and
// postings that were skipped over without ever being decoded, and the
// blocks that were decoded.
type IterStats struct {
	BlocksSkipped   int64
	PostingsSkipped int64
	BlocksDecoded   int64
}

// PostingsIterator is a cursor over one postings list that decodes one
// block at a time. SkipTo advances past whole blocks using only the
// directory, so traversal that consults BlockMax before descending can
// leave most of a long list undecoded. Not safe for concurrent use.
type PostingsIterator struct {
	data   []byte
	blocks []blockRef
	total  int

	bi      int       // current block
	di      int       // position within the current block
	cur     []Posting // decoded current block (nil until needed)
	scratch []Posting // reusable decode buffer
	err     error
	stats   IterStats
}

// NewBlockedIterator opens an iterator over a blocked payload.
func NewBlockedIterator(b []byte) (*PostingsIterator, error) {
	total, refs, data, err := parseBlockedDirectory(b)
	if err != nil {
		return nil, err
	}
	return &PostingsIterator{data: data, blocks: refs, total: total}, nil
}

// NewSliceIterator wraps an already-decoded postings list as a one-block
// iterator with exact metadata — the compatibility path for flat lists and
// for in-memory postings sources.
func NewSliceIterator(ps []Posting) *PostingsIterator {
	if len(ps) == 0 {
		return &PostingsIterator{}
	}
	var maxTF uint32
	for _, p := range ps {
		if p.TF > maxTF {
			maxTF = p.TF
		}
	}
	it := &PostingsIterator{
		total: len(ps),
		blocks: []blockRef{{
			count:  len(ps),
			minSID: ps[0].TID,
			maxSID: ps[len(ps)-1].TID,
			maxTF:  maxTF,
		}},
	}
	it.cur = ps
	it.stats.BlocksDecoded = 1
	return it
}

// Len returns the total posting count, known without decoding.
func (it *PostingsIterator) Len() int { return it.total }

// Err reports a decode error encountered while advancing; once set the
// iterator is invalid.
func (it *PostingsIterator) Err() error { return it.err }

// Stats reports the skip/decode counters accumulated so far.
func (it *PostingsIterator) Stats() IterStats { return it.stats }

// Valid reports whether the cursor is positioned on a posting.
func (it *PostingsIterator) Valid() bool {
	return it.err == nil && it.bi < len(it.blocks)
}

// BlockMax returns the directory metadata of the current block — the
// per-block maxima traversal checks before deciding to decode. It costs no
// decoding. The boolean is false when the iterator is exhausted.
func (it *PostingsIterator) BlockMax() (BlockInfo, bool) {
	if !it.Valid() {
		return BlockInfo{}, false
	}
	ref := it.blocks[it.bi]
	return BlockInfo{
		Index: it.bi, Count: ref.count,
		MinSID: ref.minSID, MaxSID: ref.maxSID, MaxTF: ref.maxTF,
	}, true
}

// ensure decodes the current block if it isn't already.
func (it *PostingsIterator) ensure() bool {
	if it.cur != nil {
		return true
	}
	decoded, err := decodeBlock(it.data, it.blocks[it.bi], it.scratch)
	if err != nil {
		it.err = err
		it.bi = len(it.blocks)
		return false
	}
	it.scratch = decoded
	it.cur = decoded
	it.stats.BlocksDecoded++
	return true
}

// Cur returns the posting at the cursor. It decodes the current block on
// first touch. Only legal while Valid.
func (it *PostingsIterator) Cur() (Posting, bool) {
	if !it.Valid() || !it.ensure() {
		return Posting{}, false
	}
	return it.cur[it.di], true
}

// Next advances the cursor one posting and reports whether it still points
// at one.
func (it *PostingsIterator) Next() bool {
	if !it.Valid() {
		return false
	}
	it.di++
	if it.di >= it.blocks[it.bi].count {
		it.bi++
		it.di = 0
		it.cur = nil
	}
	return it.Valid()
}

// SkipBlock jumps past the current block without decoding it, counting the
// skip. Used when block metadata alone proves the block cannot matter.
func (it *PostingsIterator) SkipBlock() bool {
	if !it.Valid() {
		return false
	}
	if it.cur == nil {
		it.stats.BlocksSkipped++
		it.stats.PostingsSkipped += int64(it.blocks[it.bi].count - it.di)
	}
	it.bi++
	it.di = 0
	it.cur = nil
	return it.Valid()
}

// SkipTo advances the cursor to the first posting with TID >= tid. Blocks
// whose directory proves they end before tid are skipped without decoding.
// Skipping to a TID beyond the list exhausts the iterator (and counts every
// untouched block as skipped), so SkipTo(math.MaxInt64) doubles as "close,
// crediting the decode work avoided".
func (it *PostingsIterator) SkipTo(tid social.PostID) bool {
	for it.Valid() && it.blocks[it.bi].maxSID < tid {
		it.SkipBlock()
	}
	if !it.Valid() {
		return false
	}
	if tid <= it.blocks[it.bi].minSID && it.di == 0 {
		return true // already positioned; leave the block undecoded
	}
	if !it.ensure() {
		return false
	}
	// Binary search within the decoded block, never moving backwards.
	lo, hi := it.di, len(it.cur)
	for lo < hi {
		mid := (lo + hi) / 2
		if it.cur[mid].TID < tid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.di = lo
	if it.di >= len(it.cur) {
		// maxSID >= tid guarantees a hit; reaching here means the cursor was
		// already past every qualifying posting in this block.
		it.bi++
		it.di = 0
		it.cur = nil
		return it.SkipTo(tid)
	}
	return true
}
