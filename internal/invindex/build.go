package invindex

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/mapreduce"
	"repro/internal/social"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// GeohashLen is the geohash encoding length in characters (the paper
	// evaluates 1 through 4 and settles on 4).
	GeohashLen int
	// Mappers and Reducers set the MapReduce parallelism (3-node cluster
	// in the paper; defaults 4/4 here).
	Mappers  int
	Reducers int
	// PathPrefix places the postings files in the DFS namespace,
	// e.g. "index" -> index/part-00000.
	PathPrefix string
	// BlockSize is the postings-per-block target of the blocked layout
	// (non-positive selects DefaultBlockSize). Ignored when FlatPostings
	// is set.
	BlockSize int
	// FlatPostings forces the flat varint layout for every list — the
	// compatibility/oracle configuration with no block directory and no
	// skipping.
	FlatPostings bool
}

// DefaultBuildOptions returns the 4-length-geohash configuration used by
// most of the paper's experiments.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{GeohashLen: 4, Mappers: 4, Reducers: 4, PathPrefix: "index"}
}

// BuildStats reports construction-side measurements for Figures 5 and 6.
type BuildStats struct {
	InvertedJob   mapreduce.Counters // Algorithm 2/3 job
	ForwardJob    mapreduce.Counters // forward-index job
	Keys          int                // distinct ⟨geohash, term⟩ keys
	PostingsBytes int64              // bytes written to the DFS
	ForwardBytes  int64              // estimated in-memory forward index size
}

// entryRef locates one postings list inside the DFS.
type entryRef struct {
	file    string
	offset  int64
	length  int64
	count   int  // number of postings, exposed for stats and planning
	blocked bool // payload uses the blocked layout (block directory + bodies)
}

// Index is the queryable hybrid index. After Build it is read-only and
// safe for concurrent use.
type Index struct {
	fs         *dfs.FS
	geohashLen int
	forward    map[Key]entryRef
	fetches    atomic.Int64 // postings lists fetched since ResetStats
}

// Build constructs the hybrid index over posts with two MapReduce jobs and
// stores the postings lists in fsys. Posts must already carry their term
// bags (social.Post.Words).
func Build(fsys *dfs.FS, posts []*social.Post, opts BuildOptions) (*Index, *BuildStats, error) {
	if opts.GeohashLen < 1 || opts.GeohashLen > geo.MaxPrecision {
		return nil, nil, fmt.Errorf("invindex: geohash length %d out of range", opts.GeohashLen)
	}
	if opts.PathPrefix == "" {
		opts.PathPrefix = "index"
	}

	// ---- Job 1: inverted index (Algorithms 2 and 3) --------------------
	input := make([]any, len(posts))
	for i, p := range posts {
		input[i] = p
	}
	invJob := mapreduce.Config{
		Name:        fmt.Sprintf("inverted-index-g%d", opts.GeohashLen),
		Input:       input,
		NumMappers:  opts.Mappers,
		NumReducers: opts.Reducers,
		Map: func(in any, emit mapreduce.Emitter) error {
			p := in.(*social.Post)
			// Algorithm 2: H tracks the term frequency of each term; the
			// posts arrive pre-tokenized, so H folds the word bag.
			h := make(map[string]uint32, len(p.Words))
			for _, w := range p.Words {
				h[w]++
			}
			geohash := geo.Encode(p.Loc, opts.GeohashLen)
			for w, tf := range h {
				emit(mapreduce.KeyValue{
					Key:   Key{Geohash: geohash, Term: w}.String(),
					Value: encodePosting(Posting{TID: p.SID, TF: tf}),
				})
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emitter) error {
			// Algorithm 3: append all postings, sort by timestamp, emit.
			ps := make([]Posting, 0, len(values))
			for _, v := range values {
				p, err := decodePosting(v)
				if err != nil {
					return err
				}
				ps = append(ps, p)
			}
			ps = sortPostings(ps)
			var encoded []byte
			var err error
			if opts.FlatPostings {
				encoded, err = EncodePostingsList(ps)
			} else {
				encoded, err = EncodeBlockedPostingsList(ps, opts.BlockSize)
			}
			if err != nil {
				return err
			}
			emit(mapreduce.KeyValue{Key: key, Value: encoded})
			return nil
		},
	}
	invResult, err := mapreduce.Run(invJob)
	if err != nil {
		return nil, nil, err
	}

	// Write each reduce partition to its own DFS part file in key order,
	// recording where each postings list lands. Keys are sorted within a
	// partition, so postings of nearby cells are contiguous on disk.
	type placed struct {
		key string
		ref entryRef
	}
	var placements []any
	var postingsBytes int64
	for part, records := range invResult.Partitions {
		if len(records) == 0 {
			continue
		}
		name := fmt.Sprintf("%s/part-%05d", opts.PathPrefix, part)
		w, err := fsys.Create(name)
		if err != nil {
			return nil, nil, err
		}
		for _, kv := range records {
			off := w.Offset()
			if _, err := w.Write(kv.Value); err != nil {
				return nil, nil, err
			}
			count, err := PostingsListCount(kv.Value)
			if err != nil {
				return nil, nil, err
			}
			placements = append(placements, placed{
				key: kv.Key,
				ref: entryRef{
					file: name, offset: off, length: int64(len(kv.Value)),
					count: count, blocked: !opts.FlatPostings,
				},
			})
			postingsBytes += int64(len(kv.Value))
		}
		if err := w.Close(); err != nil {
			return nil, nil, err
		}
	}

	// ---- Job 2: forward index ------------------------------------------
	// "another MapReduce job is run over the inverted index files ... a
	// posting forward index is created to keep track of the position of
	// each postings list in HDFS."
	fwdJob := mapreduce.Config{
		Name:        "forward-index",
		Input:       placements,
		NumMappers:  opts.Mappers,
		NumReducers: 1, // the forward index is one small in-memory table
		Map: func(in any, emit mapreduce.Emitter) error {
			pl := in.(placed)
			emit(mapreduce.KeyValue{Key: pl.key, Value: encodeRef(pl.ref)})
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emitter) error {
			if len(values) != 1 {
				return fmt.Errorf("invindex: key %q has %d placements", key, len(values))
			}
			emit(mapreduce.KeyValue{Key: key, Value: values[0]})
			return nil
		},
	}
	fwdResult, err := mapreduce.Run(fwdJob)
	if err != nil {
		return nil, nil, err
	}
	forward := make(map[Key]entryRef, len(placements))
	var forwardBytes int64
	for _, kv := range fwdResult.All() {
		k, err := ParseKey(kv.Key)
		if err != nil {
			return nil, nil, err
		}
		ref, err := decodeRef(kv.Value)
		if err != nil {
			return nil, nil, err
		}
		forward[k] = ref
		forwardBytes += int64(len(kv.Key)) + 24 // key bytes + offsets
	}

	idx := &Index{fs: fsys, geohashLen: opts.GeohashLen, forward: forward}
	stats := &BuildStats{
		InvertedJob:   invResult.Counters,
		ForwardJob:    fwdResult.Counters,
		Keys:          len(forward),
		PostingsBytes: postingsBytes,
		ForwardBytes:  forwardBytes,
	}
	return idx, stats, nil
}

// encodeRef serializes an entryRef for the forward-index job.
func encodeRef(r entryRef) []byte {
	blocked := 0
	if r.blocked {
		blocked = 1
	}
	buf := []byte(fmt.Sprintf("%s\x00%d\x00%d\x00%d\x00%d", r.file, r.offset, r.length, r.count, blocked))
	return buf
}

func decodeRef(b []byte) (entryRef, error) {
	var r entryRef
	parts := splitNul(string(b), 5)
	if parts == nil {
		return r, fmt.Errorf("invindex: malformed ref %q", b)
	}
	r.file = parts[0]
	if _, err := fmt.Sscanf(parts[1], "%d", &r.offset); err != nil {
		return r, err
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &r.length); err != nil {
		return r, err
	}
	if _, err := fmt.Sscanf(parts[3], "%d", &r.count); err != nil {
		return r, err
	}
	var blocked int
	if _, err := fmt.Sscanf(parts[4], "%d", &blocked); err != nil {
		return r, err
	}
	r.blocked = blocked != 0
	return r, nil
}

func splitNul(s string, n int) []string {
	parts := make([]string, 0, n)
	start := 0
	for i := 0; i < len(s) && len(parts) < n-1; i++ {
		if s[i] == 0 {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	if len(parts) != n {
		return nil
	}
	return parts
}
