// Package invindex implements the paper's hybrid spatial-keyword index
// (Section IV-B, Figure 4). The inverted index maps each composite key
// ⟨geohash, term⟩ to a postings list of ⟨TID, TF⟩ pairs sorted by tweet ID
// and stored in the (simulated) distributed file system; the small forward
// index kept in main memory maps each key to the position of its postings
// list. Construction runs as two MapReduce jobs (Algorithms 2 and 3 plus
// the forward-index job of Section IV-B2).
package invindex

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/social"
)

// Posting is one inverted-index entry: a tweet ID (the tweet's timestamp)
// and the term frequency of the key's term in that tweet.
type Posting struct {
	TID social.PostID
	TF  uint32
}

// Key is the composite inverted-index key ⟨geohash, term⟩.
type Key struct {
	Geohash string
	Term    string
}

// String renders the key in its sortable on-disk form: geohash, then a NUL
// separator (below any Base32 or term byte), then the term. Sorting these
// strings sorts by geohash first, which is what keeps postings of nearby
// cells contiguous on disk.
func (k Key) String() string { return k.Geohash + "\x00" + k.Term }

// ParseKey inverts Key.String.
func ParseKey(s string) (Key, error) {
	i := strings.IndexByte(s, 0)
	if i < 0 {
		return Key{}, fmt.Errorf("invindex: malformed key %q", s)
	}
	return Key{Geohash: s[:i], Term: s[i+1:]}, nil
}

// encodePosting serializes one posting as two varints (tid, tf). Used for
// the map-phase intermediate values.
func encodePosting(p Posting) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, uint64(p.TID))
	buf = binary.AppendUvarint(buf, uint64(p.TF))
	return buf
}

// decodePosting inverts encodePosting.
func decodePosting(b []byte) (Posting, error) {
	tid, n := binary.Uvarint(b)
	if n <= 0 {
		return Posting{}, fmt.Errorf("invindex: bad posting tid")
	}
	tf, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return Posting{}, fmt.Errorf("invindex: bad posting tf")
	}
	return Posting{TID: social.PostID(tid), TF: uint32(tf)}, nil
}

// EncodePostingsList serializes a postings list sorted by TID:
// a varint count followed by delta-encoded TIDs and raw TF varints.
// Delta encoding exploits the sortedness the reduce phase guarantees.
func EncodePostingsList(ps []Posting) ([]byte, error) {
	buf := make([]byte, 0, 2+len(ps)*3)
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	var prev social.PostID
	for i, p := range ps {
		if i > 0 && p.TID <= prev {
			return nil, fmt.Errorf("invindex: postings not strictly sorted at %d (%d after %d)",
				i, p.TID, prev)
		}
		buf = binary.AppendUvarint(buf, uint64(p.TID-prev))
		buf = binary.AppendUvarint(buf, uint64(p.TF))
		prev = p.TID
	}
	return buf, nil
}

// PostingsListCount reads just the leading count of an encoded postings
// list, without decoding the entries.
func PostingsListCount(b []byte) (int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("invindex: bad postings count")
	}
	return int(count), nil
}

// DecodePostingsList inverts EncodePostingsList.
func DecodePostingsList(b []byte) ([]Posting, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("invindex: bad postings count")
	}
	b = b[n:]
	// Each posting occupies at least two bytes, so a count exceeding the
	// remaining payload is corruption; checking up front also stops a
	// hostile header from forcing a giant allocation.
	if count > uint64(len(b))/2 {
		return nil, fmt.Errorf("invindex: postings count %d exceeds payload %d", count, len(b))
	}
	out := make([]Posting, 0, count)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, n1 := binary.Uvarint(b)
		if n1 <= 0 {
			return nil, fmt.Errorf("invindex: truncated tid at posting %d", i)
		}
		tf, n2 := binary.Uvarint(b[n1:])
		if n2 <= 0 {
			return nil, fmt.Errorf("invindex: truncated tf at posting %d", i)
		}
		prev += delta
		out = append(out, Posting{TID: social.PostID(prev), TF: uint32(tf)})
		b = b[n1+n2:]
	}
	return out, nil
}

// sortPostings orders a list by TID, merging duplicate TIDs by summing
// their term frequencies (a tweet emits one posting per term, so duplicates
// only arise from pathological inputs; summing keeps the bag semantics).
func sortPostings(ps []Posting) []Posting {
	sort.Slice(ps, func(i, j int) bool { return ps[i].TID < ps[j].TID })
	out := ps[:0]
	for _, p := range ps {
		if len(out) > 0 && out[len(out)-1].TID == p.TID {
			out[len(out)-1].TF += p.TF
			continue
		}
		out = append(out, p)
	}
	return out
}
