package invindex

import "repro/internal/telemetry"

// RegisterMetrics hooks the index's cumulative fetch counter and size
// gauge into a telemetry registry as read-at-scrape metrics.
func (idx *Index) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("tklus_postings_fetches_total",
		"Postings lists fetched from the DFS.", nil,
		func() float64 { return float64(idx.Fetches()) })
	reg.GaugeFunc("tklus_index_keys",
		"Distinct (geohash, term) keys in the hybrid index.", nil,
		func() float64 { return float64(idx.NumKeys()) })
}
