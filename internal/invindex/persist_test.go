package invindex

import (
	"bytes"
	"testing"

	"repro/internal/dfs"
	"repro/internal/geo"
)

func TestForwardIndexRoundTrip(t *testing.T) {
	idx, _, fsys := build(t, corpus(), 4)
	var buf bytes.Buffer
	if err := idx.SaveForward(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(fsys, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GeohashLen() != 4 || loaded.NumKeys() != idx.NumKeys() {
		t.Fatalf("loaded geohashLen=%d keys=%d", loaded.GeohashLen(), loaded.NumKeys())
	}
	// Every key fetches identically through the loaded index.
	for _, k := range idx.Keys() {
		a, err := idx.FetchPostings(k.Geohash, k.Term)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.FetchPostings(k.Geohash, k.Term)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("key %v: %d vs %d postings", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %v posting %d differs", k, i)
			}
		}
	}
}

func TestLoadIndexRejectsCorruption(t *testing.T) {
	idx, _, fsys := build(t, corpus(), 4)
	var buf bytes.Buffer
	if err := idx.SaveForward(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXXXX"), full[6:]...)
	if _, err := LoadIndex(fsys, bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncations at various points.
	for _, cut := range []int{0, 3, 7, len(full) / 2, len(full) - 1} {
		if _, err := LoadIndex(fsys, bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Forward index referencing files missing from the DFS.
	emptyFS := dfs.New(dfs.DefaultOptions())
	if _, err := LoadIndex(emptyFS, bytes.NewReader(full)); err == nil {
		t.Error("dangling postings file accepted")
	}
}

func TestLoadedIndexServesCover(t *testing.T) {
	// End-to-end check through a realistic access pattern: a circle cover
	// fetch against the loaded index equals the original.
	idx, _, fsys := build(t, corpus(), 4)
	var buf bytes.Buffer
	if err := idx.SaveForward(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(fsys, &buf)
	if err != nil {
		t.Fatal(err)
	}
	center := geo.Point{Lat: 43.68, Lon: -79.37}
	for _, cell := range geo.CircleCover(center, 10, 4) {
		a, _ := idx.FetchPostings(cell, "hotel")
		b, _ := loaded.FetchPostings(cell, "hotel")
		if len(a) != len(b) {
			t.Fatalf("cell %s: %d vs %d", cell, len(a), len(b))
		}
	}
}
