package invindex

import "sort"

// GeohashLen returns the encoding length the index was built with.
func (idx *Index) GeohashLen() int { return idx.geohashLen }

// NumKeys returns the number of distinct ⟨geohash, term⟩ keys.
func (idx *Index) NumKeys() int { return len(idx.forward) }

// Fetches returns how many postings lists have been fetched since the last
// ResetStats; the DFS tracks the byte- and block-level costs.
func (idx *Index) Fetches() int64 { return idx.fetches.Load() }

// ResetStats zeroes the fetch counter.
func (idx *Index) ResetStats() { idx.fetches.Store(0) }

// PostingsCount returns the number of postings stored under a key without
// fetching them (the forward index carries the count).
func (idx *Index) PostingsCount(geohash, term string) int {
	return idx.forward[Key{Geohash: geohash, Term: term}].count
}

// FetchPostings retrieves the postings list for ⟨geohash, term⟩ from the
// DFS, or nil if the key has no postings. Each call models one random
// access to the inverted index ("Random access to inverted index in HDFS
// is disk-based", Section VI-B1). Blocked payloads are decoded eagerly;
// use OpenPostings to decode lazily under block skipping.
func (idx *Index) FetchPostings(geohash, term string) ([]Posting, error) {
	ref, ok := idx.forward[Key{Geohash: geohash, Term: term}]
	if !ok {
		return nil, nil
	}
	idx.fetches.Add(1)
	raw, err := idx.fs.ReadAt(ref.file, ref.offset, ref.length)
	if err != nil {
		return nil, err
	}
	if ref.blocked {
		return DecodeBlockedPostingsList(raw)
	}
	return DecodePostingsList(raw)
}

// OpenPostings fetches the postings payload for ⟨geohash, term⟩ — one
// random access, exactly like FetchPostings — but returns a lazy iterator
// instead of decoding every entry. Blocked payloads decode one block at a
// time as the cursor touches them; flat payloads fall back to a fully
// decoded single-block iterator (the compatibility path). Returns nil with
// no error when the key has no postings.
func (idx *Index) OpenPostings(geohash, term string) (*PostingsIterator, error) {
	ref, ok := idx.forward[Key{Geohash: geohash, Term: term}]
	if !ok {
		return nil, nil
	}
	idx.fetches.Add(1)
	raw, err := idx.fs.ReadAt(ref.file, ref.offset, ref.length)
	if err != nil {
		return nil, err
	}
	if ref.blocked {
		return NewBlockedIterator(raw)
	}
	ps, err := DecodePostingsList(raw)
	if err != nil {
		return nil, err
	}
	return NewSliceIterator(ps), nil
}

// Keys returns every forward-index key in sorted (geohash-major) order.
// Intended for tests and tooling, not the query path.
func (idx *Index) Keys() []Key {
	out := make([]Key, 0, len(idx.forward))
	for k := range idx.forward {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// TermsInCell returns the distinct terms indexed under one geohash cell,
// sorted. Intended for diagnostics.
func (idx *Index) TermsInCell(geohash string) []string {
	var out []string
	for k := range idx.forward {
		if k.Geohash == geohash {
			out = append(out, k.Term)
		}
	}
	sort.Strings(out)
	return out
}
