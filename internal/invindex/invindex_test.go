package invindex

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/social"
)

func TestPostingsCodecRoundTrip(t *testing.T) {
	lists := [][]Posting{
		nil,
		{{TID: 1, TF: 1}},
		{{TID: 1, TF: 3}, {TID: 2, TF: 1}, {TID: 1000000, TF: 7}},
		{{TID: 1 << 40, TF: 1}, {TID: 1<<40 + 1, TF: 2}},
	}
	for _, ps := range lists {
		enc, err := EncodePostingsList(ps)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodePostingsList(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(ps) {
			t.Fatalf("round trip length %d != %d", len(dec), len(ps))
		}
		for i := range ps {
			if dec[i] != ps[i] {
				t.Fatalf("round trip mismatch at %d: %v != %v", i, dec[i], ps[i])
			}
		}
	}
}

func TestEncodeRejectsUnsorted(t *testing.T) {
	if _, err := EncodePostingsList([]Posting{{TID: 2, TF: 1}, {TID: 1, TF: 1}}); err == nil {
		t.Error("unsorted postings accepted")
	}
	if _, err := EncodePostingsList([]Posting{{TID: 2, TF: 1}, {TID: 2, TF: 1}}); err == nil {
		t.Error("duplicate TIDs accepted")
	}
}

func TestDecodeCorruptData(t *testing.T) {
	valid, _ := EncodePostingsList([]Posting{{TID: 5, TF: 2}, {TID: 9, TF: 1}})
	for cut := 1; cut < len(valid); cut++ {
		if _, err := DecodePostingsList(valid[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, err := DecodePostingsList(nil); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestPostingsCodecQuick(t *testing.T) {
	f := func(tids []uint32, tfs []uint8) bool {
		// Build a strictly increasing TID list.
		var ps []Posting
		var prev social.PostID
		for i, d := range tids {
			prev += social.PostID(d%1000) + 1
			tf := uint32(1)
			if i < len(tfs) {
				tf = uint32(tfs[i]) + 1
			}
			ps = append(ps, Posting{TID: prev, TF: tf})
		}
		enc, err := EncodePostingsList(ps)
		if err != nil {
			return false
		}
		dec, err := DecodePostingsList(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec, append([]Posting{}, ps...)) ||
			(len(dec) == 0 && len(ps) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyStringParse(t *testing.T) {
	k := Key{Geohash: "6gxp", Term: "restaur"}
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != k {
		t.Errorf("ParseKey = %+v, want %+v", parsed, k)
	}
	if _, err := ParseKey("no-separator"); err == nil {
		t.Error("malformed key accepted")
	}
	// Key order is geohash-major: same geohash, different terms sort
	// together regardless of term bytes.
	a := Key{Geohash: "6gxp", Term: "zzz"}.String()
	b := Key{Geohash: "6gxq", Term: "aaa"}.String()
	if !(a < b) {
		t.Error("geohash-major ordering broken")
	}
}

// corpus builds a small deterministic post set around two cities.
func corpus() []*social.Post {
	mk := func(sid social.PostID, uid social.UserID, lat, lon float64, words ...string) *social.Post {
		return &social.Post{
			SID: sid, UID: uid, Time: time.Unix(int64(sid), 0),
			Loc: geo.Point{Lat: lat, Lon: lon}, Words: words,
		}
	}
	return []*social.Post{
		mk(1, 1, 43.68, -79.37, "hotel", "toronto"),
		mk(2, 2, 43.69, -79.38, "hotel", "hotel", "marriott"), // tf(hotel)=2
		mk(3, 3, 43.70, -79.39, "restaur", "toronto"),
		mk(4, 4, 40.71, -74.00, "hotel", "newyork"), // far away cell
		mk(5, 5, 43.681, -79.371, "pizza"),
	}
}

func build(t *testing.T, posts []*social.Post, geohashLen int) (*Index, *BuildStats, *dfs.FS) {
	t.Helper()
	fsys := dfs.New(dfs.DefaultOptions())
	opts := DefaultBuildOptions()
	opts.GeohashLen = geohashLen
	idx, stats, err := Build(fsys, posts, opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx, stats, fsys
}

func TestBuildAndFetch(t *testing.T) {
	idx, stats, _ := build(t, corpus(), 4)
	if stats.Keys != idx.NumKeys() || stats.Keys == 0 {
		t.Fatalf("stats.Keys = %d, NumKeys = %d", stats.Keys, idx.NumKeys())
	}

	torontoCell := geo.Encode(geo.Point{Lat: 43.68, Lon: -79.37}, 4)
	ps, err := idx.FetchPostings(torontoCell, "hotel")
	if err != nil {
		t.Fatal(err)
	}
	// Tweets 1 and 2 share the Toronto 4-cell (dpz8); tweet 2 has tf 2.
	if len(ps) != 2 {
		t.Fatalf("postings = %v, want tweets 1 and 2", ps)
	}
	if ps[0].TID != 1 || ps[0].TF != 1 || ps[1].TID != 2 || ps[1].TF != 2 {
		t.Errorf("postings = %v", ps)
	}

	// Sorted by TID (the reduce guarantee behind fast intersection).
	for i := 1; i < len(ps); i++ {
		if ps[i].TID <= ps[i-1].TID {
			t.Error("postings not sorted by TID")
		}
	}

	// Missing keys are not errors.
	none, err := idx.FetchPostings(torontoCell, "nosuchterm")
	if err != nil || none != nil {
		t.Errorf("missing key: %v, %v", none, err)
	}
	none, err = idx.FetchPostings("zzzz", "hotel")
	if err != nil || none != nil {
		t.Errorf("missing cell: %v, %v", none, err)
	}

	// PostingsCount agrees without fetching.
	if got := idx.PostingsCount(torontoCell, "hotel"); got != 2 {
		t.Errorf("PostingsCount = %d, want 2", got)
	}
}

func TestBuildSeparatesCells(t *testing.T) {
	idx, _, _ := build(t, corpus(), 4)
	nyCell := geo.Encode(geo.Point{Lat: 40.71, Lon: -74.00}, 4)
	ps, err := idx.FetchPostings(nyCell, "hotel")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].TID != 4 {
		t.Errorf("NY cell postings = %v, want just tweet 4", ps)
	}
}

func TestBuildCoarseGeohashMergesCells(t *testing.T) {
	// At length 1 all Toronto tweets and the pizza tweet share cell "d",
	// as does New York.
	idx, _, _ := build(t, corpus(), 1)
	ps, err := idx.FetchPostings("d", "hotel")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Errorf("length-1 cell 'd' hotel postings = %v, want 3 tweets", ps)
	}
}

func TestBuildStatsAndSize(t *testing.T) {
	_, stats, fsys := build(t, corpus(), 4)
	if stats.InvertedJob.MapInputRecords != 5 {
		t.Errorf("map inputs = %d, want 5", stats.InvertedJob.MapInputRecords)
	}
	// Tweet 2 emits 2 keys (hotel dedup to one posting, marriott), others
	// emit one key per distinct term.
	if stats.InvertedJob.MapOutputRecords != 9 {
		t.Errorf("map outputs = %d, want 9", stats.InvertedJob.MapOutputRecords)
	}
	if stats.PostingsBytes != fsys.TotalSize() {
		t.Errorf("PostingsBytes %d != DFS size %d", stats.PostingsBytes, fsys.TotalSize())
	}
	if stats.ForwardBytes == 0 {
		t.Error("forward index size not measured")
	}
}

func TestBuildRejectsBadGeohashLen(t *testing.T) {
	fsys := dfs.New(dfs.DefaultOptions())
	for _, n := range []int{0, -1, geo.MaxPrecision + 1} {
		opts := DefaultBuildOptions()
		opts.GeohashLen = n
		if _, _, err := Build(fsys, nil, opts); err == nil {
			t.Errorf("geohash length %d accepted", n)
		}
	}
}

func TestFetchCountsAccesses(t *testing.T) {
	idx, _, fsys := build(t, corpus(), 4)
	fsys.ResetStats()
	idx.ResetStats()
	cell := geo.Encode(geo.Point{Lat: 43.68, Lon: -79.37}, 4)
	idx.FetchPostings(cell, "hotel")
	idx.FetchPostings(cell, "hotel")
	if idx.Fetches() != 2 {
		t.Errorf("Fetches = %d, want 2", idx.Fetches())
	}
	if fsys.Stats().BlocksRead == 0 {
		t.Error("DFS reads not counted")
	}
}

func TestLargeBuildConsistency(t *testing.T) {
	// Build from 2000 random posts and verify every term of every post is
	// findable through its cell, with the right TF.
	rng := rand.New(rand.NewSource(21))
	vocab := []string{"hotel", "restaur", "pizza", "game", "cafe", "club", "shop"}
	var posts []*social.Post
	for i := 1; i <= 2000; i++ {
		nWords := rng.Intn(4) + 1
		words := make([]string, nWords)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		posts = append(posts, &social.Post{
			SID: social.PostID(i), UID: social.UserID(rng.Intn(100) + 1),
			Time: time.Unix(int64(i), 0),
			Loc: geo.Point{
				Lat: 43.0 + rng.Float64(),
				Lon: -80.0 + rng.Float64(),
			},
			Words: words,
		})
	}
	idx, _, _ := build(t, posts, 3)
	for _, p := range posts[:200] { // spot-check a sample
		cell := geo.Encode(p.Loc, 3)
		tf := map[string]uint32{}
		for _, w := range p.Words {
			tf[w]++
		}
		for w, want := range tf {
			ps, err := idx.FetchPostings(cell, w)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, posting := range ps {
				if posting.TID == p.SID {
					found = true
					if posting.TF != want {
						t.Fatalf("tweet %d term %q tf = %d, want %d", p.SID, w, posting.TF, want)
					}
				}
			}
			if !found {
				t.Fatalf("tweet %d term %q missing from cell %q", p.SID, w, cell)
			}
		}
	}
}

func TestConcurrentFetches(t *testing.T) {
	idx, _, _ := build(t, corpus(), 4)
	cell := geo.Encode(geo.Point{Lat: 43.68, Lon: -79.37}, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ps, err := idx.FetchPostings(cell, "hotel")
				if err != nil || len(ps) != 2 {
					t.Errorf("concurrent fetch: %v, %v", ps, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := idx.Fetches(); got != 400 {
		t.Errorf("Fetches = %d, want 400", got)
	}
}

func TestTermsInCell(t *testing.T) {
	idx, _, _ := build(t, corpus(), 4)
	cell := geo.Encode(geo.Point{Lat: 43.68, Lon: -79.37}, 4)
	terms := idx.TermsInCell(cell)
	want := map[string]bool{"hotel": true, "toronto": true, "marriott": true, "restaur": true, "pizza": true}
	for _, term := range terms {
		if !want[term] {
			t.Errorf("unexpected term %q in cell", term)
		}
	}
	if len(terms) == 0 {
		t.Error("no terms found in the Toronto cell")
	}
}
