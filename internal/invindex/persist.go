package invindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dfs"
)

// The forward index persists as a compact binary stream: a magic header,
// the geohash length, the entry count, then per entry the key (length-
// prefixed geohash and term) and the postings-list location (file name,
// offset, length, count, and — since TKFWD2 — a flags uvarint whose bit 0
// marks a blocked payload). The postings themselves live in the DFS image.
// TKFWD1 images (no flags field, every list flat) still load.

var (
	forwardMagic   = []byte("TKFWD2")
	forwardMagicV1 = []byte("TKFWD1")
)

const refFlagBlocked = 1 << 0

// SaveForward writes the in-memory forward index to w.
func (idx *Index) SaveForward(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(forwardMagic); err != nil {
		return err
	}
	writeUvarint(bw, uint64(idx.geohashLen))
	writeUvarint(bw, uint64(len(idx.forward)))
	for k, ref := range idx.forward {
		writeString(bw, k.Geohash)
		writeString(bw, k.Term)
		writeString(bw, ref.file)
		writeUvarint(bw, uint64(ref.offset))
		writeUvarint(bw, uint64(ref.length))
		writeUvarint(bw, uint64(ref.count))
		var flags uint64
		if ref.blocked {
			flags |= refFlagBlocked
		}
		writeUvarint(bw, flags)
	}
	return bw.Flush()
}

// LoadIndex reconstructs an Index from a forward-index stream and the DFS
// holding the postings files.
func LoadIndex(fsys *dfs.FS, r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(forwardMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("invindex: reading magic: %w", err)
	}
	v1 := string(magic) == string(forwardMagicV1)
	if !v1 && string(magic) != string(forwardMagic) {
		return nil, fmt.Errorf("invindex: bad forward index magic %q", magic)
	}
	geohashLen, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if geohashLen < 1 || geohashLen > 12 {
		return nil, fmt.Errorf("invindex: implausible geohash length %d", geohashLen)
	}
	count, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		fs:         fsys,
		geohashLen: int(geohashLen),
		forward:    make(map[Key]entryRef, count),
	}
	for i := uint64(0); i < count; i++ {
		var k Key
		var ref entryRef
		if k.Geohash, err = readString(br); err != nil {
			return nil, err
		}
		if k.Term, err = readString(br); err != nil {
			return nil, err
		}
		if ref.file, err = readString(br); err != nil {
			return nil, err
		}
		vals := [3]uint64{}
		for j := range vals {
			if vals[j], err = readUvarint(br); err != nil {
				return nil, err
			}
		}
		ref.offset, ref.length, ref.count = int64(vals[0]), int64(vals[1]), int(vals[2])
		if !v1 {
			flags, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			ref.blocked = flags&refFlagBlocked != 0
		}
		if !fsys.Exists(ref.file) {
			return nil, fmt.Errorf("invindex: postings file %q missing from DFS", ref.file)
		}
		idx.forward[k] = ref
	}
	return idx, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("invindex: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
