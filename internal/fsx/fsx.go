// Package fsx wraps the mutating filesystem operations the persistence
// layer performs — create, sync, rename, mkdir, remove — behind a single
// test hook, so crash-injection tests can kill a Save after any individual
// step and assert the on-disk state still loads. Production builds pay one
// nil check per operation.
//
// The crash model is fail-stop: when the hook returns an error for an
// operation, the operation is NOT performed and the error propagates, as if
// the process had died immediately before that syscall. Combined with the
// snapshot writer's ordering (write + fsync everything into a temp
// directory, fsync, rename, then commit a pointer file), aborting before
// any single step must leave the previous snapshot fully intact.
package fsx

import (
	"os"
	"sync"
)

// Op names one mutating filesystem operation class, for hooks that want to
// fail a specific kind of step.
type Op string

const (
	OpMkdir   Op = "mkdir"
	OpCreate  Op = "create"
	OpSync    Op = "sync"    // file fsync before close
	OpDirSync Op = "dirsync" // directory fsync
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
)

var (
	hookMu sync.RWMutex
	hook   func(op Op, path string) error
)

// SetHook installs fn as the crash-injection hook; nil restores direct
// passthrough. The hook runs before each operation; a non-nil return aborts
// the operation with that error. Tests must restore the nil hook when done.
func SetHook(fn func(op Op, path string) error) {
	hookMu.Lock()
	hook = fn
	hookMu.Unlock()
}

func check(op Op, path string) error {
	hookMu.RLock()
	fn := hook
	hookMu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(op, path)
}

// MkdirAll is os.MkdirAll behind the hook.
func MkdirAll(path string, perm os.FileMode) error {
	if err := check(OpMkdir, path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

// Create is os.Create behind the hook.
func Create(path string) (*os.File, error) {
	if err := check(OpCreate, path); err != nil {
		return nil, err
	}
	return os.Create(path)
}

// SyncClose fsyncs and closes f (in that order), reporting the first error.
// The fsync is a hook step: durability is exactly what a crash test wants
// to interrupt.
func SyncClose(f *os.File) error {
	if err := check(OpSync, f.Name()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SyncDir fsyncs a directory, making its entries (renames, creates)
// durable on filesystems that require it.
func SyncDir(path string) error {
	if err := check(OpDirSync, path); err != nil {
		return err
	}
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Rename is os.Rename behind the hook — the atomic commit step of every
// snapshot save.
func Rename(oldpath, newpath string) error {
	if err := check(OpRename, newpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// RemoveAll is os.RemoveAll behind the hook.
func RemoveAll(path string) error {
	if err := check(OpRemove, path); err != nil {
		return err
	}
	return os.RemoveAll(path)
}

// WriteFileSync creates path, writes data, fsyncs and closes — the
// write-one-artifact primitive of the snapshot writer.
func WriteFileSync(path string, data []byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return SyncClose(f)
}
