// Package mapreduce is an in-process implementation of the MapReduce
// programming model (Dean & Ghemawat, OSDI 2004) that the paper uses to
// construct its hybrid index (Section IV-B2). It reproduces the Hadoop
// dataflow the index construction depends on:
//
//   - map tasks run in parallel over input splits and emit key/value pairs;
//   - an optional combiner folds map output locally;
//   - pairs are hash-partitioned across R reducers;
//   - within each partition pairs are sorted by key (Hadoop's guarantee
//     that "the key of the inverted index is sorted", which gives the
//     ⟨geohash, term⟩ layout its disk contiguity);
//   - reduce tasks run in parallel, each seeing its keys in sorted order
//     with all values grouped.
//
// Keys are strings and values are opaque byte slices, mirroring Hadoop's
// writables without reflection.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"strings"
	"sync"
)

// KeyValue is one intermediate record.
type KeyValue struct {
	Key   string
	Value []byte
}

// Emitter receives records from map and reduce functions.
type Emitter func(kv KeyValue)

// MapFunc processes one input record. Inputs are supplied by the job's
// Input slice; the framework does not interpret them.
type MapFunc func(input any, emit Emitter) error

// ReduceFunc processes one key with all its values (already sorted by the
// framework when SortValues is set).
type ReduceFunc func(key string, values [][]byte, emit Emitter) error

// Config describes one MapReduce job.
type Config struct {
	Name        string
	Input       []any
	Map         MapFunc
	Reduce      ReduceFunc
	Combine     ReduceFunc // optional local aggregation after each map task
	NumMappers  int        // parallel map workers (default 4)
	NumReducers int        // partitions / parallel reduce workers (default 4)
	SortValues  bool       // sort each key's values bytewise before reducing
}

// Counters reports job-level statistics, the analogue of Hadoop counters.
type Counters struct {
	MapInputRecords      int64
	MapOutputRecords     int64
	CombineOutputRecords int64
	ReduceInputKeys      int64
	ReduceOutputRecords  int64
	ShuffledBytes        int64
}

// Result is the output of a job: per-partition key-sorted records plus
// counters.
type Result struct {
	// Partitions holds each reducer's emitted records in emission order.
	// Reducers see keys sorted, so emission order is key-sorted when the
	// reduce function emits per key.
	Partitions [][]KeyValue
	Counters   Counters
}

// All flattens every partition into one key-sorted slice.
func (r *Result) All() []KeyValue {
	var out []KeyValue
	for _, p := range r.Partitions {
		out = append(out, p...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Run executes the job and returns its result. The first map or reduce
// error aborts the job.
func Run(cfg Config) (*Result, error) {
	if cfg.Map == nil || cfg.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs Map and Reduce", cfg.Name)
	}
	if cfg.NumMappers <= 0 {
		cfg.NumMappers = 4
	}
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = 4
	}

	var counters Counters
	var countersMu sync.Mutex

	// ---- Map phase ----------------------------------------------------
	// Each map worker owns a private set of partition buffers; they are
	// merged after the phase so no locking happens on the hot path.
	type mapOutput struct {
		partitions [][]KeyValue
	}
	outputs := make([]mapOutput, cfg.NumMappers)
	for i := range outputs {
		outputs[i].partitions = make([][]KeyValue, cfg.NumReducers)
	}

	splits := splitInput(cfg.Input, cfg.NumMappers)
	errs := make(chan error, cfg.NumMappers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.NumMappers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := &outputs[w]
			var produced, inputs int64
			emit := func(kv KeyValue) {
				p := partition(kv.Key, cfg.NumReducers)
				local.partitions[p] = append(local.partitions[p], kv)
				produced++
			}
			for _, rec := range splits[w] {
				inputs++
				if err := cfg.Map(rec, emit); err != nil {
					errs <- fmt.Errorf("mapreduce: job %q map: %w", cfg.Name, err)
					return
				}
			}
			if cfg.Combine != nil {
				var combined int64
				for p := range local.partitions {
					folded, err := applyReduce(cfg.Combine, local.partitions[p], false)
					if err != nil {
						errs <- fmt.Errorf("mapreduce: job %q combine: %w", cfg.Name, err)
						return
					}
					local.partitions[p] = folded
					combined += int64(len(folded))
				}
				countersMu.Lock()
				counters.CombineOutputRecords += combined
				countersMu.Unlock()
			}
			countersMu.Lock()
			counters.MapInputRecords += inputs
			counters.MapOutputRecords += produced
			countersMu.Unlock()
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// ---- Shuffle: merge map outputs per partition, sort by key ---------
	// Partitions shuffle independently (in Hadoop each reducer pulls and
	// merges its own partition), so they run concurrently here too.
	shuffled := make([][]KeyValue, cfg.NumReducers)
	var swg sync.WaitGroup
	for p := 0; p < cfg.NumReducers; p++ {
		swg.Add(1)
		go func(p int) {
			defer swg.Done()
			var merged []KeyValue
			var bytes int64
			for w := range outputs {
				merged = append(merged, outputs[w].partitions[p]...)
				for _, kv := range outputs[w].partitions[p] {
					bytes += int64(len(kv.Key) + len(kv.Value))
				}
			}
			slices.SortFunc(merged, func(a, b KeyValue) int { return strings.Compare(a.Key, b.Key) })
			shuffled[p] = merged
			countersMu.Lock()
			counters.ShuffledBytes += bytes
			countersMu.Unlock()
		}(p)
	}
	swg.Wait()

	// ---- Reduce phase ---------------------------------------------------
	result := &Result{Partitions: make([][]KeyValue, cfg.NumReducers)}
	redErrs := make(chan error, cfg.NumReducers)
	var rwg sync.WaitGroup
	for p := 0; p < cfg.NumReducers; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			out, keys, emitted, err := reducePartition(cfg, shuffled[p])
			if err != nil {
				redErrs <- err
				return
			}
			result.Partitions[p] = out
			countersMu.Lock()
			counters.ReduceInputKeys += keys
			counters.ReduceOutputRecords += emitted
			countersMu.Unlock()
			redErrs <- nil
		}(p)
	}
	rwg.Wait()
	close(redErrs)
	for err := range redErrs {
		if err != nil {
			return nil, err
		}
	}
	result.Counters = counters
	return result, nil
}

// reducePartition groups the sorted records of one partition by key and
// applies the reduce function.
func reducePartition(cfg Config, records []KeyValue) (out []KeyValue, keys, emitted int64, err error) {
	emit := func(kv KeyValue) {
		out = append(out, kv)
		emitted++
	}
	for i := 0; i < len(records); {
		j := i
		for j < len(records) && records[j].Key == records[i].Key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for _, kv := range records[i:j] {
			values = append(values, kv.Value)
		}
		if cfg.SortValues {
			sort.Slice(values, func(a, b int) bool { return lessBytes(values[a], values[b]) })
		}
		keys++
		if err = cfg.Reduce(records[i].Key, values, emit); err != nil {
			return nil, 0, 0, fmt.Errorf("mapreduce: job %q reduce key %q: %w", cfg.Name, records[i].Key, err)
		}
		i = j
	}
	return out, keys, emitted, nil
}

// applyReduce runs a reduce-style function over an unsorted buffer, used
// for the combiner. Values per key keep emission order unless sortValues.
func applyReduce(fn ReduceFunc, records []KeyValue, sortValues bool) ([]KeyValue, error) {
	slices.SortFunc(records, func(a, b KeyValue) int { return strings.Compare(a.Key, b.Key) })
	var out []KeyValue
	emit := func(kv KeyValue) { out = append(out, kv) }
	for i := 0; i < len(records); {
		j := i
		for j < len(records) && records[j].Key == records[i].Key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for _, kv := range records[i:j] {
			values = append(values, kv.Value)
		}
		if sortValues {
			sort.Slice(values, func(a, b int) bool { return lessBytes(values[a], values[b]) })
		}
		if err := fn(records[i].Key, values, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

func lessBytes(a, b []byte) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// partition assigns a key to one of n reducers by FNV hash, Hadoop's
// default HashPartitioner behaviour.
func partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// splitInput deals the input records into n splits round-robin.
func splitInput(input []any, n int) [][]any {
	splits := make([][]any, n)
	for i, rec := range input {
		splits[i%n] = append(splits[i%n], rec)
	}
	return splits
}
