package mapreduce

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// wordCount is the canonical MapReduce example, used as the framework's
// acceptance test.
func wordCountConfig(docs []string, mappers, reducers int) Config {
	return Config{
		Name:        "wordcount",
		Input:       anySlice(docs),
		NumMappers:  mappers,
		NumReducers: reducers,
		Map: func(input any, emit Emitter) error {
			for _, w := range strings.Fields(input.(string)) {
				emit(KeyValue{Key: w, Value: encodeCount(1)})
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emitter) error {
			var total uint64
			for _, v := range values {
				total += decodeCount(v)
			}
			emit(KeyValue{Key: key, Value: encodeCount(total)})
			return nil
		},
	}
}

func anySlice[T any](in []T) []any {
	out := make([]any, len(in))
	for i, v := range in {
		out[i] = v
	}
	return out
}

func encodeCount(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}

func decodeCount(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func TestWordCount(t *testing.T) {
	docs := []string{
		"the cat sat on the mat",
		"the dog sat on the log",
		"cat and dog and cat",
	}
	res, err := Run(wordCountConfig(docs, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint64{}
	for _, kv := range res.All() {
		got[kv.Key] = decodeCount(kv.Value)
	}
	want := map[string]uint64{
		"the": 4, "cat": 3, "sat": 2, "on": 2, "mat": 1,
		"dog": 2, "log": 1, "and": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(got), len(want), got)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("count[%q] = %d, want %d", k, got[k], n)
		}
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	docs := make([]string, 200)
	for i := range docs {
		docs[i] = fmt.Sprintf("w%d w%d w%d", i%7, i%13, i%3)
	}
	var baseline []KeyValue
	for _, par := range []struct{ m, r int }{{1, 1}, {2, 3}, {8, 5}, {16, 1}} {
		res, err := Run(wordCountConfig(docs, par.m, par.r))
		if err != nil {
			t.Fatal(err)
		}
		all := res.All()
		if baseline == nil {
			baseline = all
			continue
		}
		if len(all) != len(baseline) {
			t.Fatalf("parallelism %v changed output size: %d vs %d", par, len(all), len(baseline))
		}
		for i := range all {
			if all[i].Key != baseline[i].Key || decodeCount(all[i].Value) != decodeCount(baseline[i].Value) {
				t.Fatalf("parallelism %v changed output at %d", par, i)
			}
		}
	}
}

func TestKeysSortedWithinPartition(t *testing.T) {
	// The Hadoop sorted-key guarantee that Section IV-B2 relies on.
	docs := []string{"d b a c e f g h z y x w v u"}
	res, err := Run(wordCountConfig(docs, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for p, part := range res.Partitions {
		keys := make([]string, len(part))
		for i, kv := range part {
			keys[i] = kv.Key
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("partition %d keys not sorted: %v", p, keys)
		}
	}
}

func TestPartitioningIsByKey(t *testing.T) {
	// The same key must never land in two partitions.
	docs := []string{"k k k", "k k", "k"}
	res, err := Run(wordCountConfig(docs, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, part := range res.Partitions {
		for _, kv := range part {
			if kv.Key == "k" {
				seen++
				if got := decodeCount(kv.Value); got != 6 {
					t.Errorf("split key: partition count %d, want all 6", got)
				}
			}
		}
	}
	if seen != 1 {
		t.Errorf("key emitted from %d partitions, want 1", seen)
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	docs := make([]string, 100)
	for i := range docs {
		docs[i] = strings.Repeat("hot ", 20)
	}
	plain := wordCountConfig(docs, 4, 2)
	resPlain, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	combined := plain
	combined.Combine = plain.Reduce
	resCombined, err := Run(combined)
	if err != nil {
		t.Fatal(err)
	}
	// Same final answer.
	if decodeCount(resPlain.All()[0].Value) != decodeCount(resCombined.All()[0].Value) {
		t.Fatal("combiner changed the result")
	}
	if resCombined.Counters.ShuffledBytes >= resPlain.Counters.ShuffledBytes {
		t.Errorf("combiner did not reduce shuffle: %d vs %d",
			resCombined.Counters.ShuffledBytes, resPlain.Counters.ShuffledBytes)
	}
	if resCombined.Counters.CombineOutputRecords == 0 {
		t.Error("combine output records not counted")
	}
}

func TestSortValues(t *testing.T) {
	cfg := Config{
		Name:        "sortvals",
		Input:       anySlice([]int{3, 1, 2}),
		NumMappers:  3,
		NumReducers: 1,
		SortValues:  true,
		Map: func(input any, emit Emitter) error {
			emit(KeyValue{Key: "k", Value: []byte{byte(input.(int))}})
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emitter) error {
			joined := make([]byte, 0, len(values))
			for _, v := range values {
				joined = append(joined, v...)
			}
			emit(KeyValue{Key: key, Value: joined})
			return nil
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.All()[0].Value
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("values not sorted before reduce: %v", got)
	}
}

func TestMapErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	cfg := Config{
		Name:  "failing",
		Input: anySlice([]int{1, 2, 3}),
		Map: func(input any, emit Emitter) error {
			if input.(int) == 2 {
				return boom
			}
			return nil
		},
		Reduce: func(string, [][]byte, Emitter) error { return nil },
	}
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Errorf("map error not propagated: %v", err)
	}
}

func TestReduceErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	cfg := wordCountConfig([]string{"a b c"}, 1, 2)
	cfg.Reduce = func(key string, _ [][]byte, _ Emitter) error {
		if key == "b" {
			return boom
		}
		return nil
	}
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Errorf("reduce error not propagated: %v", err)
	}
}

func TestMissingFunctionsRejected(t *testing.T) {
	if _, err := Run(Config{Name: "nil"}); err == nil {
		t.Error("job without Map/Reduce should fail")
	}
}

func TestCounters(t *testing.T) {
	res, err := Run(wordCountConfig([]string{"a b", "c"}, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.MapInputRecords != 2 || c.MapOutputRecords != 3 {
		t.Errorf("map counters wrong: %+v", c)
	}
	if c.ReduceInputKeys != 3 || c.ReduceOutputRecords != 3 {
		t.Errorf("reduce counters wrong: %+v", c)
	}
	if c.ShuffledBytes == 0 {
		t.Error("shuffle bytes not counted")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(wordCountConfig(nil, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All()) != 0 {
		t.Errorf("empty input produced output %v", res.All())
	}
}
