package mapreduce

import (
	"fmt"
	"testing"
)

func BenchmarkWordCount(b *testing.B) {
	docs := make([]string, 2000)
	for i := range docs {
		docs[i] = fmt.Sprintf("alpha beta gamma w%d w%d delta", i%37, i%101)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := wordCountConfig(docs, workers, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWordCountWithCombiner(b *testing.B) {
	docs := make([]string, 2000)
	for i := range docs {
		docs[i] = "hot hot hot cold hot"
	}
	cfg := wordCountConfig(docs, 4, 4)
	cfg.Combine = cfg.Reduce
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
