// Package ingest loads corpora from disk for the command-line tools,
// dispatching on format: the repository's own JSONL interchange format or
// raw Twitter REST API v1.1 statuses (the paper's crawl format).
package ingest

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/corpusio"
	"repro/internal/social"
	"repro/internal/twitterjson"
)

// Load reads the corpus at path. format is "jsonl" (default) or "twitter".
// Twitter input is ETL'd: reply/retweet references are resolved to
// in-corpus tweets and posts are returned in timestamp order.
func Load(path, format string) ([]*social.Post, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "", "jsonl":
		return corpusio.Read(f)
	case "twitter":
		posts, ids, stats, err := twitterjson.Read(f)
		if err != nil {
			return nil, err
		}
		if len(posts) == 0 {
			return nil, fmt.Errorf("ingest: no geo-tagged statuses in %s (%d read, %d without geo-tag, %d malformed)",
				path, stats.Read, stats.NoGeoTag, stats.Malformed)
		}
		twitterjson.ResolveReferences(posts, ids)
		sort.Slice(posts, func(i, j int) bool { return posts[i].SID < posts[j].SID })
		return posts, nil
	default:
		return nil, fmt.Errorf("ingest: unknown format %q (want jsonl or twitter)", format)
	}
}
