package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpusio"
	"repro/internal/datagen"
)

func TestLoadJSONL(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.NumUsers = 50
	cfg.NumPosts = 200
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpusio.Write(f, corpus.Posts); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, format := range []string{"", "jsonl"} {
		posts, err := Load(path, format)
		if err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if len(posts) != 200 {
			t.Fatalf("format %q: loaded %d posts", format, len(posts))
		}
	}
}

func TestLoadTwitter(t *testing.T) {
	raw := `{"id":1001,"text":"great hotel","created_at":"Sat Nov 03 14:00:00 +0000 2012","user":{"id":501},"coordinates":{"type":"Point","coordinates":[-79.3894,43.6715]}}
{"id":1002,"text":"@x nice","created_at":"Sat Nov 03 14:05:00 +0000 2012","user":{"id":502},"coordinates":{"type":"Point","coordinates":[-79.39,43.67]},"in_reply_to_status_id":1001,"in_reply_to_user_id":501}
`
	path := filepath.Join(t.TempDir(), "tweets.json")
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	posts, err := Load(path, "twitter")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 {
		t.Fatalf("loaded %d posts", len(posts))
	}
	if posts[0].SID >= posts[1].SID {
		t.Error("posts not sorted by SID")
	}
	if posts[1].RSID != posts[0].SID {
		t.Error("references not resolved")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/does/not/exist", "jsonl"); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "empty")
	os.WriteFile(path, nil, 0o644)
	if _, err := Load(path, "twitter"); err == nil {
		t.Error("empty twitter corpus accepted")
	}
	if _, err := Load(path, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
