package tklus

import (
	"testing"
	"time"
)

// fakeClock drives the breaker without real sleeps.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, time.Second, clk.now)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("failure %d: breaker closed early", i)
		}
		b.onFailure()
	}
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %v before threshold, want closed", b.snapshot())
	}
	b.allow()
	b.onFailure() // third consecutive failure trips it
	if b.snapshot() != breakerOpen {
		t.Fatalf("state = %v after threshold, want open", b.snapshot())
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(2, time.Second, clk.now)
	b.allow()
	b.onFailure()
	b.allow()
	b.onSuccess() // breaks the streak
	b.allow()
	b.onFailure() // 1 consecutive again, not 2
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %v, want closed (streak was reset)", b.snapshot())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 10*time.Second, clk.now)
	b.allow()
	b.onFailure()
	if b.snapshot() != breakerOpen {
		t.Fatal("breaker should be open")
	}
	clk.advance(9 * time.Second)
	if b.allow() {
		t.Fatal("breaker admitted a request before the cooldown elapsed")
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed: breaker must admit one probe")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state = %v during probe, want half_open", b.snapshot())
	}
	// Only one probe at a time.
	if b.allow() {
		t.Fatal("half-open breaker admitted a second request")
	}
	// Probe success closes the circuit.
	b.onSuccess()
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.snapshot())
	}
	if !b.allow() {
		t.Fatal("closed breaker must admit requests")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 5*time.Second, clk.now)
	b.allow()
	b.onFailure()
	clk.advance(6 * time.Second)
	if !b.allow() {
		t.Fatal("probe not admitted")
	}
	b.onFailure() // probe fails: back to open for a fresh cooldown
	if b.snapshot() != breakerOpen {
		t.Fatalf("state = %v after probe failure, want open", b.snapshot())
	}
	clk.advance(4 * time.Second)
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request before the new cooldown")
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("second probe not admitted after the fresh cooldown")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second, nil)
	for i := 0; i < 100; i++ {
		if !b.allow() {
			t.Fatal("disabled breaker rejected a request")
		}
		b.onFailure()
	}
	if b.snapshot() != breakerClosed {
		t.Fatal("disabled breaker changed state")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[breakerState]string{
		breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half_open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
