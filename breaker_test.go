package tklus

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives the breaker without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, time.Second, clk.now)
	for i := 0; i < 2; i++ {
		tok, ok := b.allow()
		if !ok {
			t.Fatalf("failure %d: breaker closed early", i)
		}
		b.done(tok, outcomeFailure)
	}
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %v before threshold, want closed", b.snapshot())
	}
	tok, _ := b.allow()
	b.done(tok, outcomeFailure) // third consecutive failure trips it
	if b.snapshot() != breakerOpen {
		t.Fatalf("state = %v after threshold, want open", b.snapshot())
	}
	if _, ok := b.allow(); ok {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(2, time.Second, clk.now)
	tok, _ := b.allow()
	b.done(tok, outcomeFailure)
	tok, _ = b.allow()
	b.done(tok, outcomeSuccess) // breaks the streak
	tok, _ = b.allow()
	b.done(tok, outcomeFailure) // 1 consecutive again, not 2
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %v, want closed (streak was reset)", b.snapshot())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 10*time.Second, clk.now)
	tok, _ := b.allow()
	b.done(tok, outcomeFailure)
	if b.snapshot() != breakerOpen {
		t.Fatal("breaker should be open")
	}
	clk.advance(9 * time.Second)
	if _, ok := b.allow(); ok {
		t.Fatal("breaker admitted a request before the cooldown elapsed")
	}
	clk.advance(2 * time.Second)
	probe, ok := b.allow()
	if !ok {
		t.Fatal("cooldown elapsed: breaker must admit one probe")
	}
	if !probe.probe {
		t.Fatal("half-open admission not marked as the probe")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state = %v during probe, want half_open", b.snapshot())
	}
	// Only one probe at a time.
	if _, ok := b.allow(); ok {
		t.Fatal("half-open breaker admitted a second request")
	}
	// Probe success closes the circuit.
	b.done(probe, outcomeSuccess)
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.snapshot())
	}
	if _, ok := b.allow(); !ok {
		t.Fatal("closed breaker must admit requests")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 5*time.Second, clk.now)
	tok, _ := b.allow()
	b.done(tok, outcomeFailure)
	clk.advance(6 * time.Second)
	probe, ok := b.allow()
	if !ok {
		t.Fatal("probe not admitted")
	}
	b.done(probe, outcomeFailure) // probe fails: back to open for a fresh cooldown
	if b.snapshot() != breakerOpen {
		t.Fatalf("state = %v after probe failure, want open", b.snapshot())
	}
	clk.advance(4 * time.Second)
	if _, ok := b.allow(); ok {
		t.Fatal("re-opened breaker admitted a request before the new cooldown")
	}
	clk.advance(2 * time.Second)
	if _, ok := b.allow(); !ok {
		t.Fatal("second probe not admitted after the fresh cooldown")
	}
}

// TestBreakerStragglerCannotCloseOpenCircuit pins the attribution rule the
// pre-token breaker violated: a request admitted while the circuit was
// closed, whose success only arrives after the circuit tripped open, must
// NOT close the circuit — it proves nothing about the backend now. The old
// onSuccess() closed unconditionally, flooding a sick shard the moment one
// long straggler finally answered.
func TestBreakerStragglerCannotCloseOpenCircuit(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(2, 10*time.Second, clk.now)
	straggler, _ := b.allow() // admitted while closed, still in flight
	for i := 0; i < 2; i++ {
		tok, _ := b.allow()
		b.done(tok, outcomeFailure)
	}
	if b.snapshot() != breakerOpen {
		t.Fatal("breaker should have tripped")
	}
	b.done(straggler, outcomeSuccess) // stale-generation outcome
	if b.snapshot() != breakerOpen {
		t.Fatalf("state = %v: a straggler's success closed an open circuit", b.snapshot())
	}
	if _, ok := b.allow(); ok {
		t.Fatal("circuit admitted traffic before cooldown after straggler success")
	}
}

// TestBreakerStragglerCannotDecideProbe pins the other half of the
// attribution rule: while the half-open probe is in flight, a straggler's
// failure must not re-open the circuit (stealing the probe's verdict) and
// a straggler's success must not close it. Only the probe token decides.
func TestBreakerStragglerCannotDecideProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 5*time.Second, clk.now)
	straggler, _ := b.allow() // in flight from the closed era
	tok, _ := b.allow()
	b.done(tok, outcomeFailure) // trips
	clk.advance(6 * time.Second)
	probe, ok := b.allow()
	if !ok || !probe.probe {
		t.Fatal("probe not admitted")
	}
	b.done(straggler, outcomeFailure)
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state = %v: straggler failure moved a half-open circuit", b.snapshot())
	}
	b.done(straggler, outcomeSuccess)
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state = %v: straggler success moved a half-open circuit", b.snapshot())
	}
	// The probe's own success is what closes it.
	b.done(probe, outcomeSuccess)
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.snapshot())
	}
}

// TestBreakerAbandonedProbeReprobes: a probe that dies with the client
// (outcomeAbandon) said nothing about the shard; the circuit returns to
// open with its original timestamp so the very next allow re-probes
// instead of wedging half-open forever.
func TestBreakerAbandonedProbeReprobes(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 5*time.Second, clk.now)
	tok, _ := b.allow()
	b.done(tok, outcomeFailure)
	clk.advance(6 * time.Second)
	probe, _ := b.allow()
	b.done(probe, outcomeAbandon) // client hung up mid-probe
	if b.snapshot() != breakerOpen {
		t.Fatalf("state = %v after abandoned probe, want open", b.snapshot())
	}
	probe2, ok := b.allow()
	if !ok || !probe2.probe {
		t.Fatal("fresh probe not admitted immediately after abandonment")
	}
}

// TestBreakerHalfOpenSingleProbeConcurrent hammers allow from many
// goroutines at the moment the cooldown elapses and asserts exactly one
// wins the probe slot.
func TestBreakerHalfOpenSingleProbeConcurrent(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, time.Second, clk.now)
	tok, _ := b.allow()
	b.done(tok, outcomeFailure)
	clk.advance(2 * time.Second)

	const n = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, ok := b.allow(); ok {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
}

// TestBreakerConcurrentHammer drives allow/done from many goroutines with
// random outcomes under -race, asserting the single-probe invariant the
// whole time: between any open→half-open transition and the probe's
// verdict, no second request is admitted.
func TestBreakerConcurrentHammer(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, time.Millisecond, clk.now)

	var inFlightProbes atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tok, ok := b.allow()
				if !ok {
					continue
				}
				if tok.probe {
					if inFlightProbes.Add(1) > 1 {
						violations.Add(1)
					}
				}
				var outcome breakerOutcome
				switch rng.Intn(3) {
				case 0:
					outcome = outcomeSuccess
				case 1:
					outcome = outcomeFailure
				default:
					outcome = outcomeAbandon
				}
				// Drop the in-flight count BEFORE done: no new probe can be
				// admitted until done() transitions the state, but the
				// instant it does another goroutine may win a fresh probe,
				// and that one is legitimate.
				if tok.probe {
					inFlightProbes.Add(-1)
				}
				b.done(tok, outcome)
			}
		}(int64(g))
	}
	// Let the hammer run while the clock marches so open circuits keep
	// re-probing.
	for i := 0; i < 200; i++ {
		clk.advance(time.Millisecond)
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("observed %d concurrent probes in half-open (want single-probe semantics)", v)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second, nil)
	for i := 0; i < 100; i++ {
		tok, ok := b.allow()
		if !ok {
			t.Fatal("disabled breaker rejected a request")
		}
		b.done(tok, outcomeFailure)
	}
	if b.snapshot() != breakerClosed {
		t.Fatal("disabled breaker changed state")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[breakerState]string{
		breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half_open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
