package tklus_test

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"context"

	tklus "repro"
	"repro/internal/fsx"
)

var errInjectedCrash = errors.New("injected crash")

// searchHotel runs the canonical corpus query. Sum ranking over the tiny
// hand-rolled corpus is fully deterministic, so recovered systems must
// reproduce these results exactly.
func searchHotel(t testing.TB, sys tklus.Searcher, loc tklus.Point) []tklus.UserResult {
	t.Helper()
	res, _, err := sys.Search(context.Background(), tklus.Query{
		Loc: loc, RadiusKm: 5, Keywords: []string{"hotel"},
		K: 3, Ranking: tklus.SumScore,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func equalResults(a, b []tklus.UserResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// extraReplies builds n replies dated after the base corpus, round-robin
// across the three root threads, to ingest on top of a committed snapshot.
func extraReplies(roots []*tklus.Post, loc tklus.Point, n int) []*tklus.Post {
	at := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	var extras []*tklus.Post
	for i := 0; i < n; i++ {
		at = at.Add(time.Second)
		extras = append(extras, tklus.NewReply(800+tklus.UserID(i), at, loc, "crash me maybe", roots[i%len(roots)]))
	}
	return extras
}

// TestSaveCrashInjection kills Save immediately before every single
// filesystem mutation it performs — create, fsync, rename, mkdir, remove —
// and asserts the data directory recovers at every kill point: Load must
// succeed (the old snapshot before the commit rename, the new one after),
// and because the extra ingests are in the WAL, the recovered query results
// must be byte-identical to a run that never crashed.
func TestSaveCrashInjection(t *testing.T) {
	posts, loc, roots := ingestCorpus()
	extras := extraReplies(roots, loc, 6)

	oracle, err := tklus.Build(append(append([]*tklus.Post{}, posts...), extras...), tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := searchHotel(t, oracle, loc)

	for kill := 1; ; kill++ {
		dir := t.TempDir()
		sys, err := tklus.Build(posts, tklus.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.EnableWAL(dir, tklus.WALOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := sys.Save(dir); err != nil {
			t.Fatalf("base save: %v", err)
		}
		if err := sys.Ingest(extras...); err != nil {
			t.Fatal(err)
		}

		// Arm the fail-stop hook: die immediately before the kill-th
		// filesystem operation of the second Save.
		ops, tripped := 0, false
		fsx.SetHook(func(op fsx.Op, path string) error {
			ops++
			if ops == kill {
				tripped = true
				return errInjectedCrash
			}
			return nil
		})
		saveErr := sys.Save(dir)
		fsx.SetHook(nil)
		if err := sys.CloseWAL(); err != nil {
			t.Fatal(err)
		}

		if !tripped {
			// The save ran to completion without reaching operation #kill:
			// every kill point has been exercised.
			if saveErr != nil {
				t.Fatalf("uninterrupted save failed: %v", saveErr)
			}
			loaded, err := tklus.Load(dir, tklus.DefaultConfig())
			if err != nil {
				t.Fatalf("load after clean save: %v", err)
			}
			if got := searchHotel(t, loaded, loc); !equalResults(got, want) {
				t.Fatalf("clean save: recovered results %v, want %v", got, want)
			}
			t.Logf("save performs %d filesystem operations; all kill points recovered", kill-1)
			return
		}

		// Post-commit steps (snapshot GC) swallow injected errors by design,
		// so saveErr may be nil even though the hook tripped. Either way the
		// directory must load and replay to the uninterrupted results.
		loaded, err := tklus.Load(dir, tklus.DefaultConfig())
		if err != nil {
			t.Fatalf("kill point %d (save err: %v): load failed: %v", kill, saveErr, err)
		}
		if got := searchHotel(t, loaded, loc); !equalResults(got, want) {
			t.Fatalf("kill point %d: recovered results %v, want %v", kill, got, want)
		}
	}
}

// TestWALRecoveryWithoutSave is the plain crash story: a snapshot is
// committed, more posts are ingested (reaching only the WAL), and the
// process dies without ever checkpointing again. Load must replay every
// logged record through the normal Ingest path and land on results
// byte-identical to the process that never crashed.
func TestWALRecoveryWithoutSave(t *testing.T) {
	posts, loc, roots := ingestCorpus()
	extras := extraReplies(roots, loc, 8)
	dir := t.TempDir()

	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EnableWAL(dir, tklus.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(extras...); err != nil {
		t.Fatal(err)
	}
	want := searchHotel(t, sys, loc)
	// Crash: abandon sys. Every record was fsynced (default policy), so the
	// WAL alone carries the extras.
	if err := sys.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	loaded, err := tklus.Load(dir, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Recovery == nil {
		t.Fatal("Load reported no recovery stats")
	}
	if got := loaded.Recovery.WALRecordsReplayed; got != int64(len(extras)) {
		t.Errorf("replayed %d WAL records, want %d (stats %+v)", got, len(extras), loaded.Recovery)
	}
	if loaded.Recovery.WALRecordsSkipped != 0 {
		t.Errorf("skipped %d WAL records, want 0", loaded.Recovery.WALRecordsSkipped)
	}
	if got := searchHotel(t, loaded, loc); !equalResults(got, want) {
		t.Errorf("recovered results %v, want %v", got, want)
	}
}

// TestWALReplaySkipsSnapshottedRecords pins the idempotence rule: when the
// process dies after the snapshot commit rename but before the WAL is
// truncated, the log still holds records the snapshot already contains.
// Replay must skip them by SID — re-ingesting would fail (or double-count)
// — and still produce the uninterrupted results.
func TestWALReplaySkipsSnapshottedRecords(t *testing.T) {
	posts, loc, roots := ingestCorpus()
	extras := extraReplies(roots, loc, 5)
	dir := t.TempDir()

	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EnableWAL(dir, tklus.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(extras...); err != nil {
		t.Fatal(err)
	}
	want := searchHotel(t, sys, loc)

	// Kill the second Save at the directory fsync right after the CURRENT
	// rename: the new snapshot is committed, the WAL was never truncated.
	dirsyncs := 0
	fsx.SetHook(func(op fsx.Op, path string) error {
		if op == fsx.OpDirSync && path == dir {
			dirsyncs++
			if dirsyncs == 2 {
				return errInjectedCrash
			}
		}
		return nil
	})
	saveErr := sys.Save(dir)
	fsx.SetHook(nil)
	if !errors.Is(saveErr, errInjectedCrash) {
		t.Fatalf("injected crash did not surface: %v", saveErr)
	}
	if err := sys.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	loaded, err := tklus.Load(dir, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Recovery.WALRecordsSkipped; got != int64(len(extras)) {
		t.Errorf("skipped %d WAL records, want %d (stats %+v)", got, len(extras), loaded.Recovery)
	}
	if loaded.Recovery.WALRecordsReplayed != 0 {
		t.Errorf("replayed %d WAL records, want 0 (all are in the snapshot)",
			loaded.Recovery.WALRecordsReplayed)
	}
	if got := searchHotel(t, loaded, loc); !equalResults(got, want) {
		t.Errorf("recovered results %v, want %v", got, want)
	}
}

// TestWALTornTailRecovered simulates dying mid-append: the last WAL segment
// ends in a partial record. Load must tolerate it — the torn record was
// never acknowledged — replay every complete record, and flag the tear in
// the recovery stats.
func TestWALTornTailRecovered(t *testing.T) {
	posts, loc, roots := ingestCorpus()
	extras := extraReplies(roots, loc, 4)
	dir := t.TempDir()

	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EnableWAL(dir, tklus.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(extras...); err != nil {
		t.Fatal(err)
	}
	want := searchHotel(t, sys, loc)
	if err := sys.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a record header to the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments (err %v)", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := tklus.Load(dir, tklus.DefaultConfig())
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got: %v", err)
	}
	if !loaded.Recovery.WALTornTail {
		t.Error("recovery stats did not flag the torn tail")
	}
	if got := loaded.Recovery.WALRecordsReplayed; got != int64(len(extras)) {
		t.Errorf("replayed %d WAL records, want %d", got, len(extras))
	}
	if got := searchHotel(t, loaded, loc); !equalResults(got, want) {
		t.Errorf("recovered results %v, want %v", got, want)
	}
}
