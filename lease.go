package tklus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the leadership protocol of a replica group: a lease grants
// one replica the exclusive right to accept ingest for its shard until the
// lease expires, and every grant carries a monotonically increasing EPOCH.
// The epoch is the fencing token — writes are stamped with the epoch they
// were accepted under, and anything downstream (followers applying a
// shipped stream, the group's own append path) rejects work stamped with
// an epoch older than the current one. A deposed leader that comes back
// from a GC pause and tries to finish an old write is therefore rejected
// even though its process never observed the failover.
//
// LeaseManager is deliberately tiny so the in-process implementation here
// can later be swapped for one backed by an external coordination store
// (etcd, ZooKeeper, a database row with compare-and-swap) without touching
// the replica group.

// Lease records one leadership grant.
type Lease struct {
	Holder  string    // replica name holding the lease
	Epoch   uint64    // monotone per acquisition; the fencing token
	Expires time.Time // instant the grant lapses unless renewed
}

// ErrLeaseHeld is returned by Acquire while a different holder's lease is
// still unexpired — the safety window that prevents two leaders.
var ErrLeaseHeld = errors.New("tklus: lease held by another replica")

// ErrNotLeaseHolder is returned by Renew when the caller does not hold the
// current lease, or held it but let it expire (someone else may have
// acquired in between, so resuming silently would be unsafe).
var ErrNotLeaseHolder = errors.New("tklus: not the lease holder")

// LeaseManager arbitrates leadership for one replica group. All methods
// are safe for concurrent use.
type LeaseManager interface {
	// Acquire grants the lease to holder for ttl. While another holder's
	// unexpired lease exists it fails with ErrLeaseHeld. A fresh grant
	// (expired or never held) carries a NEW epoch, strictly greater than
	// every earlier one; re-acquiring one's own unexpired lease extends it
	// under the SAME epoch (it is a renewal, not a leadership change).
	Acquire(holder string, ttl time.Duration) (Lease, error)
	// Renew extends the caller's unexpired lease by ttl under the same
	// epoch, or fails with ErrNotLeaseHolder.
	Renew(holder string, ttl time.Duration) (Lease, error)
	// Current returns the current lease and whether it is unexpired.
	Current() (Lease, bool)
	// Release voluntarily ends the caller's lease (graceful demotion), so
	// a successor can Acquire without waiting out the TTL. Releasing a
	// lease one does not hold is a no-op.
	Release(holder string)
}

// LocalLeaseManager is the in-process LeaseManager: authoritative within
// one process, which is exactly the scope of BuildReplicatedSharded's
// in-process replica groups.
type LocalLeaseManager struct {
	now func() time.Time

	mu    sync.Mutex
	lease Lease
	held  bool // a grant exists (it may still be expired by the clock)
}

// NewLocalLeaseManager returns an in-process lease manager. now is the
// clock (nil means time.Now); tests inject a fake clock to drive expiry
// deterministically.
func NewLocalLeaseManager(now func() time.Time) *LocalLeaseManager {
	if now == nil {
		now = time.Now
	}
	return &LocalLeaseManager{now: now}
}

func (m *LocalLeaseManager) Acquire(holder string, ttl time.Duration) (Lease, error) {
	if holder == "" || ttl <= 0 {
		return Lease{}, fmt.Errorf("tklus: lease needs a holder and a positive ttl")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	if m.held && now.Before(m.lease.Expires) {
		if m.lease.Holder != holder {
			return Lease{}, fmt.Errorf("%w: %s until %s",
				ErrLeaseHeld, m.lease.Holder, m.lease.Expires.Format(time.RFC3339Nano))
		}
		m.lease.Expires = now.Add(ttl) // own unexpired lease: extend, same epoch
		return m.lease, nil
	}
	m.lease = Lease{Holder: holder, Epoch: m.lease.Epoch + 1, Expires: now.Add(ttl)}
	m.held = true
	return m.lease, nil
}

func (m *LocalLeaseManager) Renew(holder string, ttl time.Duration) (Lease, error) {
	if ttl <= 0 {
		return Lease{}, fmt.Errorf("tklus: lease needs a positive ttl")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	if !m.held || m.lease.Holder != holder || !now.Before(m.lease.Expires) {
		return Lease{}, fmt.Errorf("%w: %s", ErrNotLeaseHolder, holder)
	}
	m.lease.Expires = now.Add(ttl)
	return m.lease, nil
}

func (m *LocalLeaseManager) Current() (Lease, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lease, m.held && m.now().Before(m.lease.Expires)
}

func (m *LocalLeaseManager) Release(holder string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held && m.lease.Holder == holder {
		// Expire in place rather than erase: the epoch must stay visible so
		// the next Acquire grants a strictly greater one.
		m.lease.Expires = m.now()
	}
}
