// Benchmarks mirroring the paper's evaluation: one benchmark per table or
// figure (see DESIGN.md §3 for the experiment index) plus ablations of the
// design choices. `go test -bench=. -benchmem` runs them all;
// cmd/tklus-bench prints the corresponding paper-style series.
package tklus_test

import (
	"context"
	"strconv"
	"sync"
	"testing"

	tklus "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/kendall"
	"repro/internal/userstudy"
)

// benchEnv is built once and shared by all benchmarks.
type benchEnv struct {
	corpus  *datagen.Corpus
	queries []datagen.QuerySpec
	sys     *tklus.System // geohash length 4, default options
}

var (
	envOnce sync.Once
	env     *benchEnv
)

func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		gen := datagen.DefaultConfig()
		gen.Seed = 42
		gen.NumUsers = 1500
		gen.NumPosts = 15000
		corpus, err := datagen.Generate(gen)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := tklus.Build(corpus.Posts, tklus.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		env = &benchEnv{
			corpus:  corpus,
			queries: corpus.GenerateQueries(43, 10),
			sys:     sys,
		}
	})
	return env
}

// query instantiates a workload spec.
func query(spec datagen.QuerySpec, radius float64, k int, sem core.Semantic, ranking core.Ranking) tklus.Query {
	return tklus.Query{
		Loc: spec.Loc, RadiusKm: radius, Keywords: spec.Keywords,
		K: k, Semantic: sem, Ranking: ranking,
	}
}

func (e *benchEnv) withKeywords(n int) []datagen.QuerySpec {
	var out []datagen.QuerySpec
	for _, q := range e.queries {
		if len(q.Keywords) == n {
			out = append(out, q)
		}
	}
	return out
}

// runBatch executes each spec once against the shared system.
func runBatch(b *testing.B, sys *tklus.System, specs []datagen.QuerySpec,
	radius float64, sem core.Semantic, ranking core.Ranking) {
	b.Helper()
	for _, spec := range specs {
		if _, _, err := sys.Search(context.Background(), query(spec, radius, 10, sem, ranking)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5IndexConstruction measures hybrid-index construction per
// geohash length (Figure 5), with the centralized single-threaded builder
// as the comparison point.
func BenchmarkFig5IndexConstruction(b *testing.B) {
	e := benchSetup(b)
	for _, length := range []int{1, 2, 3, 4} {
		b.Run(benchName("mapreduce/g", length), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := tklus.DefaultConfig()
				cfg.Index.GeohashLen = length
				if _, err := tklus.Build(e.corpus.Posts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("centralized/g4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fsys := dfs.New(dfs.DefaultOptions())
			if _, err := baseline.CentralizedBuild(fsys, e.corpus.Posts, 4, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6IndexSize reports the index sizes of Figure 6 as benchmark
// metrics (bytes are the measurement, not time).
func BenchmarkFig6IndexSize(b *testing.B) {
	e := benchSetup(b)
	for _, length := range []int{1, 2, 3, 4} {
		b.Run(benchName("g", length), func(b *testing.B) {
			var postings, forward int64
			for i := 0; i < b.N; i++ {
				cfg := tklus.DefaultConfig()
				cfg.Index.GeohashLen = length
				sys, err := tklus.Build(e.corpus.Posts, cfg)
				if err != nil {
					b.Fatal(err)
				}
				postings = sys.IndexStats.PostingsBytes
				forward = sys.IndexStats.ForwardBytes
			}
			b.ReportMetric(float64(postings), "postings-bytes")
			b.ReportMetric(float64(forward), "forward-bytes")
		})
	}
}

// BenchmarkFig7GeohashLength measures query latency per geohash length
// (Figure 7) at a 10 km radius.
func BenchmarkFig7GeohashLength(b *testing.B) {
	e := benchSetup(b)
	specs := e.withKeywords(1)
	for _, length := range []int{1, 2, 3, 4} {
		cfg := tklus.DefaultConfig()
		cfg.Index.GeohashLen = length
		sys, err := tklus.Build(e.corpus.Posts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("g", length), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBatch(b, sys, specs, 10, core.Or, core.SumScore)
			}
		})
	}
}

// BenchmarkFig8SingleKeyword measures single-keyword query latency for the
// two rankings across radii (Figure 8).
func BenchmarkFig8SingleKeyword(b *testing.B) {
	e := benchSetup(b)
	specs := e.withKeywords(1)
	for _, radius := range []float64{5, 20, 50, 100} {
		for _, cfg := range []struct {
			name    string
			ranking core.Ranking
		}{{"sum", core.SumScore}, {"max", core.MaxScore}} {
			b.Run(benchName(cfg.name+"/r", int(radius)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runBatch(b, e.sys, specs, radius, core.Or, cfg.ranking)
				}
			})
		}
	}
}

// BenchmarkFig9KendallTau measures the cost of comparing the two rankings
// (Figure 9's metric computation, including both searches).
func BenchmarkFig9KendallTau(b *testing.B) {
	e := benchSetup(b)
	specs := e.withKeywords(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			sumRes, _, err := e.sys.Search(context.Background(), query(spec, 20, 10, core.Or, core.SumScore))
			if err != nil {
				b.Fatal(err)
			}
			maxRes, _, err := e.sys.Search(context.Background(), query(spec, 20, 10, core.Or, core.MaxScore))
			if err != nil {
				b.Fatal(err)
			}
			a := make([]int64, len(sumRes))
			c := make([]int64, len(maxRes))
			for j, r := range sumRes {
				a[j] = int64(r.UID)
			}
			for j, r := range maxRes {
				c[j] = int64(r.UID)
			}
			kendall.TauVariant(a, c)
		}
	}
}

// BenchmarkFig10MultiKeyword measures multi-keyword latency per semantics
// and keyword count (Figure 10) at a 20 km radius.
func BenchmarkFig10MultiKeyword(b *testing.B) {
	e := benchSetup(b)
	for _, sem := range []core.Semantic{core.And, core.Or} {
		for nk := 1; nk <= 3; nk++ {
			specs := e.withKeywords(nk)
			b.Run(benchName(sem.String()+"/kw", nk), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runBatch(b, e.sys, specs, 20, sem, core.MaxScore)
				}
			})
		}
	}
}

// BenchmarkFig12SpecificBound compares max-score query latency under the
// global popularity bound vs the hot-keyword specific bounds (Figure 12).
func BenchmarkFig12SpecificBound(b *testing.B) {
	e := benchSetup(b)
	hot := e.corpus.HotQueries(44, 10, 2)
	globalCfg := tklus.DefaultConfig()
	globalCfg.Engine.UseSpecificBounds = false
	globalSys, err := tklus.Build(e.corpus.Posts, globalCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBatch(b, globalSys, hot, 20, core.Or, core.MaxScore)
		}
	})
	b.Run("specific", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBatch(b, e.sys, hot, 20, core.Or, core.MaxScore)
		}
	})
}

// BenchmarkFig13UserStudy measures the simulated judging pipeline
// (Figure 13): search plus panel precision.
func BenchmarkFig13UserStudy(b *testing.B) {
	e := benchSetup(b)
	panel := userstudy.NewPanel(e.corpus, userstudy.DefaultPanel())
	specs := e.withKeywords(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, _, err := e.sys.Search(context.Background(), query(spec, 10, 10, core.Or, core.SumScore))
			if err != nil {
				b.Fatal(err)
			}
			panel.Precision(res, spec.Loc, 10, spec.Keywords)
		}
	}
}

// BenchmarkAblationPruning isolates the value of Algorithm 5's upper-bound
// pruning: identical results, different thread-construction work.
func BenchmarkAblationPruning(b *testing.B) {
	e := benchSetup(b)
	noPruneCfg := tklus.DefaultConfig()
	noPruneCfg.Engine.UsePruning = false
	noPruneSys, err := tklus.Build(e.corpus.Posts, noPruneCfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := e.withKeywords(1)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBatch(b, e.sys, specs, 50, core.Or, core.MaxScore)
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBatch(b, noPruneSys, specs, 50, core.Or, core.MaxScore)
		}
	})
}

// BenchmarkAblationPageCache compares metadata-page caching settings (the
// paper's configuration is cache-off).
func BenchmarkAblationPageCache(b *testing.B) {
	e := benchSetup(b)
	specs := e.withKeywords(1)
	for _, cache := range []int{0, 256} {
		cfg := tklus.DefaultConfig()
		cfg.DB.CacheSize = cache
		sys, err := tklus.Build(e.corpus.Posts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("pages", cache), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBatch(b, sys, specs, 20, core.Or, core.SumScore)
			}
		})
	}
}

// BenchmarkAblationThreadDepth varies Algorithm 1's depth limit.
func BenchmarkAblationThreadDepth(b *testing.B) {
	e := benchSetup(b)
	specs := e.withKeywords(1)
	for _, depth := range []int{1, 4, 8} {
		cfg := tklus.DefaultConfig()
		cfg.Engine.Params.ThreadDepth = depth
		sys, err := tklus.Build(e.corpus.Posts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBatch(b, sys, specs, 20, core.Or, core.SumScore)
			}
		})
	}
}

// BenchmarkTableIVGeohash measures raw geohash encoding (Table IV's
// operation) — the innermost primitive of both construction and search.
func BenchmarkTableIVGeohash(b *testing.B) {
	p := tklus.Point{Lat: -23.994140625, Lon: -46.23046875}
	b.Run("encode4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchGeohashSink = geo.Encode(p, 4)
		}
	})
}

var benchGeohashSink string

func benchName(prefix string, n int) string {
	return prefix + strconv.Itoa(n)
}
