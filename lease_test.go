package tklus

import (
	"errors"
	"testing"
	"time"
)

func TestLeaseAcquireGrantsMonotoneEpochs(t *testing.T) {
	clk := newFakeClock()
	m := NewLocalLeaseManager(clk.now)
	l1, err := m.Acquire("r0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Holder != "r0" || l1.Epoch == 0 {
		t.Fatalf("lease = %+v, want holder r0 with nonzero epoch", l1)
	}
	clk.advance(2 * time.Second) // expire
	l2, err := m.Acquire("r1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch <= l1.Epoch {
		t.Fatalf("second acquisition epoch %d not greater than first %d", l2.Epoch, l1.Epoch)
	}
}

func TestLeaseAcquireFailsWhileHeld(t *testing.T) {
	clk := newFakeClock()
	m := NewLocalLeaseManager(clk.now)
	if _, err := m.Acquire("r0", time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("r1", time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("err = %v, want ErrLeaseHeld — two leaders must be impossible", err)
	}
	// The holder itself may re-acquire: an extension under the SAME epoch.
	l1, _ := m.Current()
	l2, err := m.Acquire("r0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch != l1.Epoch {
		t.Fatalf("self re-acquire changed epoch %d -> %d", l1.Epoch, l2.Epoch)
	}
}

func TestLeaseRenewExtendsSameEpoch(t *testing.T) {
	clk := newFakeClock()
	m := NewLocalLeaseManager(clk.now)
	l1, _ := m.Acquire("r0", time.Second)
	clk.advance(900 * time.Millisecond)
	l2, err := m.Renew("r0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch != l1.Epoch {
		t.Fatalf("renew changed epoch %d -> %d", l1.Epoch, l2.Epoch)
	}
	if !l2.Expires.After(l1.Expires) {
		t.Fatal("renew did not extend the expiry")
	}
}

func TestLeaseRenewRejectsNonHolderAndExpired(t *testing.T) {
	clk := newFakeClock()
	m := NewLocalLeaseManager(clk.now)
	if _, err := m.Renew("r0", time.Second); !errors.Is(err, ErrNotLeaseHolder) {
		t.Fatalf("renew with no lease: err = %v, want ErrNotLeaseHolder", err)
	}
	m.Acquire("r0", time.Second)
	if _, err := m.Renew("r1", time.Second); !errors.Is(err, ErrNotLeaseHolder) {
		t.Fatalf("renew by non-holder: err = %v, want ErrNotLeaseHolder", err)
	}
	clk.advance(2 * time.Second)
	// An expired lease cannot be quietly resumed: another replica may have
	// acquired in the gap, so the old holder must go through Acquire.
	if _, err := m.Renew("r0", time.Second); !errors.Is(err, ErrNotLeaseHolder) {
		t.Fatalf("renew after expiry: err = %v, want ErrNotLeaseHolder", err)
	}
}

func TestLeaseReleaseLetsSuccessorAcquireImmediately(t *testing.T) {
	clk := newFakeClock()
	m := NewLocalLeaseManager(clk.now)
	l1, _ := m.Acquire("r0", time.Hour)
	m.Release("r1") // releasing a lease one does not hold is a no-op
	if _, held := m.Current(); !held {
		t.Fatal("stranger's Release dropped the lease")
	}
	m.Release("r0")
	if _, held := m.Current(); held {
		t.Fatal("released lease still reported held")
	}
	l2, err := m.Acquire("r1", time.Second)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if l2.Epoch <= l1.Epoch {
		t.Fatalf("epoch %d after release not greater than %d", l2.Epoch, l1.Epoch)
	}
}
