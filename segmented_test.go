package tklus_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	tklus "repro"
	"repro/internal/datagen"
	"repro/internal/segment"
)

// segGridCorpus generates the shared grid corpus once per test run.
func segGridCorpus(t *testing.T) (*datagen.Corpus, []datagen.QuerySpec) {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.Seed = 42
	gen.NumUsers = 500
	gen.NumPosts = 4000
	corpus, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	return corpus, corpus.GenerateQueries(43, 3)
}

// segExtras synthesizes posts dated after the corpus, round-robin over a
// few authors near the query hotspots, for the post-seal ingest axis.
func segExtras(corpus *datagen.Corpus, n int) []*tklus.Post {
	at := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	loc := corpus.Posts[0].Loc
	texts := []string{
		"great hotel downtown", "amazing museum view", "pizza restaurant parking",
	}
	var out []*tklus.Post
	for i := 0; i < n; i++ {
		at = at.Add(time.Minute)
		out = append(out, tklus.NewPost(tklus.UserID(9000+i%5), at, loc, texts[i%len(texts)]))
	}
	return out
}

// TestSegmentedEquivalenceGrid is the acceptance grid: segment-backed
// search must be byte-identical to an in-memory oracle built over the
// same posts, across ε × ranking × radius × semantic × post-seal ingest ×
// time-window — including after compaction. The oracle is a plain batch
// Build over base posts plus extras; the segmented arm builds over the
// base only and ingests the extras live (half sealed, half still in the
// memtable), so the comparison also proves that memtable indexing matches
// the batch mapper exactly.
func TestSegmentedEquivalenceGrid(t *testing.T) {
	corpus, queries := segGridCorpus(t)
	extras := segExtras(corpus, 40)
	allPosts := append(append([]*tklus.Post{}, corpus.Posts...), extras...)

	minAt := corpus.Posts[0].Time
	maxAt := extras[len(extras)-1].Time
	span := maxAt.Sub(minAt)
	midWindow := &tklus.TimeWindow{From: minAt.Add(span / 3), To: minAt.Add(2 * span / 3)}
	lateWindow := &tklus.TimeWindow{From: time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC), To: maxAt}

	for _, eps := range []float64{0.1, 0.3} {
		eps := eps
		t.Run(fmt.Sprintf("eps=%g", eps), func(t *testing.T) {
			mkCfg := func(prefix string) tklus.Config {
				cfg := tklus.DefaultConfig()
				cfg.Index.GeohashLen = 5
				cfg.Index.PathPrefix = prefix
				cfg.Engine.Params.Epsilon = eps
				cfg.HotKeywords = datagen.MeaningfulKeywords()
				return cfg
			}
			oracle, err := tklus.Build(allPosts, mkCfg(fmt.Sprintf("oracle-e%g", eps)))
			if err != nil {
				t.Fatal(err)
			}
			base, err := tklus.Build(corpus.Posts, mkCfg(fmt.Sprintf("seg-e%g", eps)))
			if err != nil {
				t.Fatal(err)
			}
			seg, err := tklus.EnableSegments(base, tklus.SegmentOptions{
				Dir:         t.TempDir(),
				BucketWidth: 30 * 24 * time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer seg.Close()
			if seg.Store.SegmentCount() < 2 {
				t.Fatalf("expected the ~6-month corpus to split into multiple segments, got %d",
					seg.Store.SegmentCount())
			}
			// Post-seal ingest: first half of the extras gets sealed into
			// its own segment, the second half stays in the memtable.
			if err := seg.Ingest(extras[:len(extras)/2]...); err != nil {
				t.Fatal(err)
			}
			if err := seg.SealNow(); err != nil {
				t.Fatal(err)
			}
			if err := seg.Ingest(extras[len(extras)/2:]...); err != nil {
				t.Fatal(err)
			}
			if seg.Store.Memtable().Len() == 0 {
				t.Fatal("expected live posts in the memtable")
			}

			grid := func(t *testing.T) {
				prunedTotal := int64(0)
				for qi, spec := range queries {
					for _, ranking := range []tklus.Ranking{tklus.SumScore, tklus.MaxScore} {
						for _, radius := range []float64{5, 15} {
							for _, sem := range []tklus.Semantic{tklus.Or, tklus.And} {
								if sem == tklus.And && len(spec.Keywords) < 2 {
									continue
								}
								for _, win := range []*tklus.TimeWindow{nil, midWindow, lateWindow} {
									q := tklus.Query{
										Loc: spec.Loc, RadiusKm: radius, Keywords: spec.Keywords,
										K: 5, Semantic: sem, Ranking: ranking, TimeWindow: win,
									}
									want, _, err := oracle.Search(context.Background(), q)
									if err != nil {
										t.Fatal(err)
									}
									got, stats, err := seg.Search(context.Background(), q)
									if err != nil {
										t.Fatal(err)
									}
									if !equalResults(got, want) {
										t.Fatalf("query %d (rank=%v r=%.0f sem=%v win=%v): segmented %v, oracle %v",
											qi, ranking, radius, sem, win != nil, got, want)
									}
									prunedTotal += stats.PartitionsPruned
								}
							}
						}
					}
				}
				if prunedTotal == 0 {
					t.Fatal("windowed queries never pruned a partition")
				}
			}
			t.Run("sealed+memtable", grid)

			// Compaction must not change a single result.
			if _, err := seg.Compact(); err != nil {
				t.Fatal(err)
			}
			t.Run("compacted", grid)
		})
	}
}

// TestSegmentedDurableReopen drives the durable lifecycle: build →
// segments → live ingest → crash (no checkpoint) → Load + EnableSegments
// must restore the exact serving state from sealed segments plus WAL
// replay into the memtable; then a clean Save → reopen must as well.
func TestSegmentedDurableReopen(t *testing.T) {
	posts, loc, roots := ingestCorpus()
	dir := t.TempDir()
	cfg := tklus.DefaultConfig()

	sys, err := tklus.Build(posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EnableWAL(dir, tklus.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	seg, err := tklus.EnableSegments(sys, tklus.SegmentOptions{
		Dir:         filepath.Join(dir, "segments"),
		BucketWidth: 24 * time.Hour,
		WALDir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Save(dir); err != nil {
		t.Fatal(err)
	}
	extras := extraReplies(roots, loc, 7)
	if err := seg.Ingest(extras...); err != nil {
		t.Fatal(err)
	}
	want := searchHotel(t, seg, loc)
	if err := sys.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	seg.Close()

	// Crash restart: no checkpoint happened since the ingest, so the
	// extras live only in the WAL — both their rows (replayed by Load)
	// and their keywords (replayed into the memtable by EnableSegments).
	sys2, err := tklus.Load(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg2, err := tklus.EnableSegments(sys2, tklus.SegmentOptions{
		Dir:         filepath.Join(dir, "segments"),
		BucketWidth: 24 * time.Hour,
		WALDir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := searchHotel(t, seg2, loc); !equalResults(got, want) {
		t.Fatalf("after crash restart: got %v, want %v", got, want)
	}

	// Clean shutdown: Save seals the memtable, so the next open serves
	// the extras from a segment and the WAL replay finds nothing to do.
	if _, err := sys2.EnableWAL(dir, tklus.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := seg2.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	seg2.Close()

	sys3, err := tklus.Load(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg3, err := tklus.EnableSegments(sys3, tklus.SegmentOptions{
		Dir:         filepath.Join(dir, "segments"),
		BucketWidth: 24 * time.Hour,
		WALDir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seg3.Close()
	if seg3.Store.Memtable().Len() != 0 {
		t.Fatalf("clean reopen left %d rows in the memtable", seg3.Store.Memtable().Len())
	}
	if got := searchHotel(t, seg3, loc); !equalResults(got, want) {
		t.Fatalf("after clean reopen: got %v, want %v", got, want)
	}
}

// TestSnapshotGCSegmentAware pins the satellite contract: snap-N
// collection must never delete sealed segment files the segment MANIFEST
// references, and it clears orphans a crashed seal left behind.
func TestSnapshotGCSegmentAware(t *testing.T) {
	posts, loc, roots := ingestCorpus()
	dir := t.TempDir()
	cfg := tklus.DefaultConfig()

	sys, err := tklus.Build(posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EnableWAL(dir, tklus.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	seg, err := tklus.EnableSegments(sys, tklus.SegmentOptions{
		Dir:         filepath.Join(dir, "segments"),
		BucketWidth: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	// Plant an orphan that looks exactly like a crashed seal leftover.
	orphan := filepath.Join(dir, "segments", ".tmp-seg-99999999")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Several checkpoints with live ingest in between: each Save triggers
	// snapshot gc (keep = latest), which must leave every referenced
	// segment file alone.
	extras := extraReplies(roots, loc, 9)
	for i, p := range extras {
		if err := seg.Ingest(p); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := seg.Save(dir); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("snapshot gc left the orphan segment file behind (err=%v)", err)
	}
	for _, ref := range segment.ReferencedFiles(filepath.Join(dir, "segments")) {
		if _, err := os.Stat(ref); err != nil {
			t.Fatalf("snapshot gc deleted referenced segment state %s: %v", ref, err)
		}
	}
	// Only the newest snapshot survives, proving gc actually ran.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("expected exactly one surviving snapshot, got %d", snaps)
	}
	if got := searchHotel(t, seg, loc); len(got) == 0 {
		t.Fatal("post-gc search returned nothing")
	}
}

// TestSegmentedFreshKeywordVisible pins the empty-memtable visibility
// contract: the engine must publish the memtable view even when it was
// empty at refresh time, so a post ingested afterwards — with a keyword
// no sealed segment holds — is a candidate for the very next query
// without waiting for a seal.
func TestSegmentedFreshKeywordVisible(t *testing.T) {
	posts, loc, _ := ingestCorpus()
	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seg, err := tklus.EnableSegments(sys, tklus.SegmentOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	p := tklus.NewPost(99001, time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC), loc, "zanzibar spice market")
	if err := seg.Ingest(p); err != nil {
		t.Fatal(err)
	}
	res, _, err := seg.Search(context.Background(), tklus.Query{
		Loc: loc, RadiusKm: 10, Keywords: []string{"zanzibar"}, K: 3, Ranking: tklus.SumScore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].UID != 99001 {
		t.Fatalf("fresh keyword not served from memtable: %v", res)
	}
}
