package tklus

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/invindex"
	"repro/internal/metadb"
	"repro/internal/segment"
	"repro/internal/social"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// SegmentOptions configures the on-disk segment storage engine a
// SegmentedSystem serves from.
type SegmentOptions struct {
	// Dir is the segment directory (conventionally <data>/segments).
	Dir string
	// BucketWidth is the time-bucket width; ingest crossing a bucket
	// boundary seals the memtable, so each segment covers at most one
	// bucket and windowed queries prune whole segments. Non-positive
	// selects 30 days.
	BucketWidth time.Duration
	// BlockSize is the postings block size segments are sealed with;
	// non-positive selects the index default.
	BlockSize int
	// MemtableRows force-seals the memtable at this many buffered rows;
	// non-positive disables size-based seals.
	MemtableRows int
	// CompactFanIn is how many adjacent same-size-class segments one
	// compaction merge folds together; non-positive selects 4.
	CompactFanIn int
	// CompactInterval, when positive, runs background size-tiered
	// compaction on this period until Close.
	CompactInterval time.Duration
	// WALDir, when set, replays the data directory's WAL into the
	// memtable on open: posts beyond the last sealed segment carry their
	// keywords in the log, so their index entries survive a restart.
	WALDir string
}

// SegmentedSystem serves a System from the LSM-style segment store:
// sealed immutable segments (mmap'd, zero-copy postings and row metadata)
// plus a live memtable, presented to the query engine as time-bounded
// partitions. It shares the underlying System's metadata database,
// bounds, contents store and WAL — only the postings/row-metadata read
// path and the ingest indexing change:
//
//   - Reads skip the simulated DFS page model and the B⁺-tree descents
//     entirely; postings iterate directly over mapped bytes.
//   - Ingested posts are indexed immediately in the memtable (the base
//     System defers keywords to the next batch build), so a segmented
//     system's results equal a full batch rebuild over all posts.
//   - A query TimeWindow prunes whole segments by bucket range before
//     any block is touched (QueryStats.PartitionsPruned counts them).
type SegmentedSystem struct {
	*System
	Store *segment.Store

	// segMu serializes every mutation of the store and engine: ingest,
	// seal, compaction, save and close. Searches never take it.
	segMu  sync.Mutex
	engine atomic.Pointer[core.Engine]

	stopCompact chan struct{}
	compactDone chan struct{}
}

var _ Searcher = (*SegmentedSystem)(nil)

// EnableSegments wraps a built (or loaded) System in the segment storage
// engine. An empty store is seeded by migrating the batch-built index and
// row store into time-bucketed segments; a populated store is opened
// as-is (every file checksummed). With WALDir set, logged posts beyond
// the last sealed segment are replayed into the memtable, restoring their
// just-in-time index entries after a restart — SegmentedSystem.Save seals
// before snapshotting precisely so that every unsealed post is still in
// the WAL.
func EnableSegments(sys *System, opts SegmentOptions) (*SegmentedSystem, error) {
	if sys == nil {
		return nil, fmt.Errorf("tklus: EnableSegments needs a built system")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("tklus: EnableSegments needs a segment directory")
	}
	store, err := segment.OpenStore(opts.Dir, segment.Options{
		GeohashLen:   sys.Index.GeohashLen(),
		BucketWidth:  opts.BucketWidth,
		BlockSize:    opts.BlockSize,
		MemtableRows: opts.MemtableRows,
		CompactFanIn: opts.CompactFanIn,
	})
	if err != nil {
		return nil, err
	}
	s := &SegmentedSystem{System: sys, Store: store}
	if store.Empty() {
		if err := s.migrate(); err != nil {
			store.Close()
			return nil, fmt.Errorf("tklus: migrating index into segments: %w", err)
		}
	}
	if opts.WALDir != "" {
		if err := s.replayWALIntoMemtable(filepath.Join(opts.WALDir, walDirName)); err != nil {
			store.Close()
			return nil, fmt.Errorf("tklus: replaying wal into memtable: %w", err)
		}
	}
	sys.DB.EnableRowMetaSnapshotFrom(store)
	if err := s.refreshEngine(); err != nil {
		store.Close()
		return nil, err
	}
	if opts.CompactInterval > 0 {
		s.stopCompact = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop(opts.CompactInterval)
	}
	return s, nil
}

// migrate seeds an empty store from the batch-built index: every row of
// the metadata database and every postings list of the inverted index,
// split at time-bucket boundaries. One-time cost on first boot with
// segments enabled; afterwards the store opens from its MANIFEST.
func (s *SegmentedSystem) migrate() error {
	var rows []metadb.Row
	s.DB.Scan(func(r metadb.Row) bool {
		rows = append(rows, r)
		return true
	})
	postings := make(map[invindex.Key][]invindex.Posting)
	for _, k := range s.Index.Keys() {
		ps, err := s.Index.FetchPostings(k.Geohash, k.Term)
		if err != nil {
			return err
		}
		if len(ps) > 0 {
			postings[k] = ps
		}
	}
	return s.Store.BulkLoad(rows, postings)
}

// replayWALIntoMemtable restores the just-in-time index entries of posts
// the WAL holds beyond the last sealed segment. Rows themselves were
// already replayed into the metadata database by Load; this pass only
// rebuilds their memtable postings (the log records carry the words).
// Records at or below the seal watermark — or beyond what the database
// accepted — are skipped, so the replay is idempotent across crashes.
func (s *SegmentedSystem) replayWALIntoMemtable(walDir string) error {
	sealed := s.Store.MaxSealedSID()
	_, dbMax := s.DB.SIDRange()
	_, err := wal.Replay(walDir, func(p *social.Post) error {
		if p.SID <= sealed || p.SID > dbMax {
			return nil
		}
		_, err := s.Store.Add(p)
		return err
	})
	return err
}

// refreshEngine rebuilds the query engine over the store's current view
// set and publishes it atomically; in-flight searches finish on the old
// engine (whose retired segments stay mapped until Close). Caller holds
// segMu or is the constructor.
func (s *SegmentedSystem) refreshEngine() error {
	views := s.Store.Views()
	parts := make([]core.Partition, 0, len(views))
	for _, v := range views {
		parts = append(parts, core.Partition{Source: v.Source, MinSID: v.MinSID, MaxSID: v.MaxSID})
	}
	if len(parts) == 0 {
		// Empty corpus: fall back to the (equally empty) batch index.
		parts = []core.Partition{{Source: s.Index}}
	}
	eng, err := core.NewPartitionedEngine(parts, s.DB, s.Bounds, s.System.Engine.Opts)
	if err != nil {
		return err
	}
	if s.PopCache != nil {
		eng.SetPopularityCache(s.PopCache)
	}
	s.engine.Store(eng)
	return nil
}

// Engine returns the current segment-backed query engine.
func (s *SegmentedSystem) Engine() *core.Engine { return s.engine.Load() }

// UnderlyingSystem returns the wrapped System — the server uses it to
// mount the introspection endpoints over the shared state.
func (s *SegmentedSystem) UnderlyingSystem() *System { return s.System }

// Search executes a query against the segment-backed engine. It
// implements Searcher.
func (s *SegmentedSystem) Search(ctx context.Context, q Query) ([]UserResult, *QueryStats, error) {
	return s.engine.Load().Search(ctx, q)
}

// Ingest appends live posts: the shared System applies them (metadata
// database, WAL, thread popularity, pruning bounds) and the store indexes
// their keywords in the memtable immediately — unlike the plain batch
// System, a segmented system's brand-new posts are candidates for the
// very next query. Crossing a time-bucket boundary seals the memtable and
// refreshes the engine.
func (s *SegmentedSystem) Ingest(posts ...*Post) error {
	return s.IngestContext(context.Background(), posts...)
}

// IngestContext is Ingest with a context (see System.IngestContext).
func (s *SegmentedSystem) IngestContext(ctx context.Context, posts ...*Post) error {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	sealed := false
	for _, p := range posts {
		if err := s.System.IngestContext(ctx, p); err != nil {
			return err
		}
		sl, err := s.Store.Add(p)
		if err != nil {
			return err
		}
		sealed = sealed || sl
	}
	if sealed {
		return s.refreshEngine()
	}
	return nil
}

// SealNow seals the memtable into an immutable segment and refreshes the
// engine. No-op when the memtable is empty.
func (s *SegmentedSystem) SealNow() error {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if err := s.Store.SealNow(); err != nil {
		return err
	}
	return s.refreshEngine()
}

// Compact runs size-tiered compaction to a fixed point and refreshes the
// engine if anything merged. Returns how many segments were merged away.
func (s *SegmentedSystem) Compact() (int, error) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	n, err := s.Store.Compact()
	if n > 0 {
		if rerr := s.refreshEngine(); err == nil {
			err = rerr
		}
	}
	return n, err
}

// Save seals the memtable and then snapshots the underlying System. The
// order is the crash-safety contract: the snapshot's WAL rotation mark
// only ever truncates records whose posts are already sealed, so a
// restart can always rebuild the memtable from the log.
func (s *SegmentedSystem) Save(dir string) error {
	return s.SaveContext(context.Background(), dir)
}

// SaveContext is Save with a context for checkpoint tracing (see
// System.SaveContext); sealing happens before the traced snapshot.
func (s *SegmentedSystem) SaveContext(ctx context.Context, dir string) error {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if err := s.Store.SealNow(); err != nil {
		return err
	}
	if err := s.refreshEngine(); err != nil {
		return err
	}
	return s.System.SaveContext(ctx, dir)
}

// compactLoop runs background compaction until Close.
func (s *SegmentedSystem) compactLoop(interval time.Duration) {
	defer close(s.compactDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCompact:
			return
		case <-t.C:
			s.Compact() // best-effort; next tick retries after an error
		}
	}
}

// RegisterMetrics exports the store's tklus_segment_* counters and
// gauges.
func (s *SegmentedSystem) RegisterMetrics(reg *telemetry.Registry) {
	s.Store.RegisterMetrics(reg)
}

// Close stops background compaction and unmaps every segment. Call it
// only after in-flight searches have drained; it does not close the
// underlying System's WAL.
func (s *SegmentedSystem) Close() error {
	if s.stopCompact != nil {
		close(s.stopCompact)
		<-s.compactDone
		s.stopCompact = nil
	}
	s.segMu.Lock()
	defer s.segMu.Unlock()
	return s.Store.Close()
}
