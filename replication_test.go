package tklus_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	tklus "repro"
	"repro/internal/datagen"
)

// replicaSharding is the partitioning the replication tests run on: a
// 4-character prefix spreads one city across several shards so a wide
// query fans out, with default hedging and breakers active.
func replicaSharding() tklus.ShardingConfig {
	sc := tklus.DefaultShardingConfig()
	sc.NumShards = 3
	sc.PrefixLen = 4
	return sc
}

// fastFailoverConfig is a replication config tuned so a test observes a
// failover in tens of milliseconds instead of the production default.
func fastFailoverConfig(t testing.TB) tklus.ReplicationConfig {
	t.Helper()
	rc := tklus.DefaultReplicationConfig()
	rc.Dir = t.TempDir()
	rc.LeaseTTL = 40 * time.Millisecond
	rc.ShipInterval = time.Millisecond
	return rc
}

// buildMonoAndReplicated builds a monolithic oracle and a replicated
// sharded tier over the same corpus and configuration.
func buildMonoAndReplicated(t testing.TB, posts int, cfg tklus.Config, sc tklus.ShardingConfig, rc tklus.ReplicationConfig) (*tklus.System, *tklus.ReplicatedShardedSystem, *datagen.Corpus) {
	t.Helper()
	dcfg := datagen.DefaultConfig()
	dcfg.NumUsers = 500
	dcfg.NumPosts = posts
	corpus, err := datagen.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := tklus.Build(corpus.Posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := tklus.BuildReplicatedSharded(corpus.Posts, cfg, sc, rc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return mono, rs, corpus
}

// liveExtras builds n live posts dated after the whole corpus (so their
// SIDs are monotone past every built post), written by existing corpus
// users at the first city's center — they shift |P_u| normalization and
// thread state, so replicas that missed one answer differently.
func liveExtras(corpus *datagen.Corpus, n int) []*tklus.Post {
	hi := corpus.Posts[0].Time
	for _, p := range corpus.Posts {
		if p.Time.After(hi) {
			hi = p.Time
		}
	}
	at := hi.Add(time.Hour)
	loc := corpus.Config.Cities[0].Center
	extras := make([]*tklus.Post, 0, n)
	for i := 0; i < n; i++ {
		at = at.Add(time.Second)
		uid := corpus.Posts[i%len(corpus.Posts)].UID
		extras = append(extras, tklus.NewPost(uid, at, loc, "pizza at the waterfront restaurant"))
	}
	return extras
}

// groupOwning returns the replica group of the shard owning loc's cell.
func groupOwning(t *testing.T, rs *tklus.ReplicatedShardedSystem, loc tklus.Point, prefixLen int) *tklus.ReplicaGroup {
	t.Helper()
	idx := shardOwning(t, rs.ShardedSystem, loc, prefixLen)
	g := rs.Group(rs.ShardNames()[idx])
	if g == nil {
		t.Fatalf("no replica group for shard %s", rs.ShardNames()[idx])
	}
	return g
}

// TestReplicatedMatchesMonolithic extends the tier's core guarantee to the
// replicated arrangement: with every replica healthy, the merged results
// are byte-identical to a monolithic build across semantics, rankings,
// radii and windows, with no degradation and zero surfaced lag.
func TestReplicatedMatchesMonolithic(t *testing.T) {
	rc := tklus.DefaultReplicationConfig()
	rc.Dir = t.TempDir()
	mono, rs, corpus := buildMonoAndReplicated(t, 4000, tklus.DefaultConfig(), replicaSharding(), rc)
	window := corpusWindow(corpus)
	ctx := context.Background()

	for _, sem := range []tklus.Semantic{tklus.Or, tklus.And} {
		for _, ranking := range []tklus.Ranking{tklus.SumScore, tklus.MaxScore} {
			for _, radius := range []float64{8, 40} {
				for _, win := range []*tklus.TimeWindow{nil, window} {
					q := tklus.Query{
						Loc:        corpus.Config.Cities[0].Center,
						RadiusKm:   radius,
						Keywords:   []string{"pizza", "restaurant"},
						K:          10,
						Semantic:   sem,
						Ranking:    ranking,
						TimeWindow: win,
					}
					name := fmt.Sprintf("%v/%v/r%.0f/win%v", sem, ranking, radius, win != nil)
					want, _, err := mono.Search(ctx, q)
					if err != nil {
						t.Fatalf("%s: mono: %v", name, err)
					}
					got, stats, err := rs.Search(ctx, q)
					if err != nil {
						t.Fatalf("%s: replicated: %v", name, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: replicated results differ\n got: %v\nwant: %v", name, got, want)
					}
					if stats.Degraded() {
						t.Errorf("%s: unexpected degradation: %v", name, stats.DegradedShards)
					}
					if stats.ReplicaLagSIDs != 0 {
						t.Errorf("%s: healthy tier surfaced lag %d", name, stats.ReplicaLagSIDs)
					}
				}
			}
		}
	}
}

// TestReplicatedFollowersServeIngestedState is the WAL-shipping round
// trip: ingest live posts through every group's leader, wait for the
// followers to drain the shipped stream, then kill every leader so reads
// MUST come from followers — the answers must be byte-identical to a
// monolithic system that ingested the same posts, with no degradation.
func TestReplicatedFollowersServeIngestedState(t *testing.T) {
	sc := replicaSharding()
	mono, rs, corpus := buildMonoAndReplicated(t, 3000, tklus.DefaultConfig(), sc, fastFailoverConfig(t))

	extras := liveExtras(corpus, 40)
	if err := rs.Ingest(extras...); err != nil {
		t.Fatalf("replicated ingest: %v", err)
	}
	if err := mono.Ingest(extras...); err != nil {
		t.Fatalf("mono ingest: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rs.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("followers never caught up: %v", err)
	}
	for _, g := range rs.Groups() {
		if err := g.KillReplica(g.Leader()); err != nil {
			t.Fatal(err)
		}
	}

	q := wideQuery(corpus)
	want, _, err := mono.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := rs.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("follower-served query: %v", err)
	}
	if stats.Degraded() {
		t.Fatalf("followers should have served whole: %v", stats.DegradedShards)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("follower-served results differ\n got: %v\nwant: %v", got, want)
	}
}

// TestReplicatedFailoverFencesDeposedLeader is the flagship fault
// injection: kill a shard's leader between two ingest batches. The next
// ingest must promote the most-caught-up follower under a higher epoch;
// the deposed leader's late write, stamped with its old epoch, must be
// rejected with ErrStaleEpoch through the write door; and the merged
// query must come back byte-identical to the monolithic oracle — which
// never saw the fenced write — with DegradedShards empty.
func TestReplicatedFailoverFencesDeposedLeader(t *testing.T) {
	sc := replicaSharding()
	mono, rs, corpus := buildMonoAndReplicated(t, 3000, tklus.DefaultConfig(), sc, fastFailoverConfig(t))
	ctx := context.Background()

	batch := liveExtras(corpus, 60)
	first, second, late := batch[:20], batch[20:40], batch[40:]
	if err := rs.Ingest(first...); err != nil {
		t.Fatal(err)
	}
	if err := mono.Ingest(first...); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := rs.WaitCaughtUp(wctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	g := groupOwning(t, rs, corpus.Config.Cities[0].Center, sc.PrefixLen)
	oldLeader, oldEpoch := g.Leader(), g.Epoch()
	if err := g.KillReplica(oldLeader); err != nil {
		t.Fatal(err)
	}

	// The mid-ingest kill: the next batch blocks until the dead leader's
	// lease lapses, then lands on the promoted follower.
	if err := rs.Ingest(second...); err != nil {
		t.Fatalf("ingest across failover: %v", err)
	}
	if err := mono.Ingest(second...); err != nil {
		t.Fatal(err)
	}
	if got := g.Leader(); got == oldLeader || got == "" {
		t.Fatalf("leader after failover = %q, want a promoted follower (old %q)", got, oldLeader)
	}
	if got := g.Epoch(); got <= oldEpoch {
		t.Fatalf("epoch after failover = %d, want > %d (the fencing token must advance)", got, oldEpoch)
	}
	if got := g.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}

	// The deposed leader wakes up and retries its write with the epoch it
	// was promoted under: fenced at the write door.
	err := g.IngestAs(oldEpoch, late...)
	if !errors.Is(err, tklus.ErrStaleEpoch) {
		t.Fatalf("late write under epoch %d: err = %v, want ErrStaleEpoch", oldEpoch, err)
	}

	wctx, cancel = context.WithTimeout(ctx, 10*time.Second)
	if err := rs.WaitCaughtUp(wctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	q := wideQuery(corpus)
	want, _, err := mono.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := rs.Search(ctx, q)
	if err != nil {
		t.Fatalf("post-failover query: %v", err)
	}
	if stats.Degraded() {
		t.Fatalf("post-failover degradation: %v", stats.DegradedShards)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-failover results differ (the fenced write may have leaked)\n got: %v\nwant: %v", got, want)
	}

	// Revive the deposed leader: it rejoins as a follower, drains the new
	// leader's stream (skipping everything it already holds), and once the
	// NEW leader dies, it serves the full state — the round trip proves
	// re-shipping is idempotent across the demote/promote cycle.
	if err := g.ReviveReplica(oldLeader); err != nil {
		t.Fatal(err)
	}
	wctx, cancel = context.WithTimeout(ctx, 10*time.Second)
	if err := g.WaitCaughtUp(wctx); err != nil {
		t.Fatalf("revived leader never caught up: %v", err)
	}
	cancel()
	if err := g.KillReplica(g.Leader()); err != nil {
		t.Fatal(err)
	}
	got, stats, err = rs.Search(ctx, q)
	if err != nil {
		t.Fatalf("query after second kill: %v", err)
	}
	if stats.Degraded() {
		t.Fatalf("revived replica should have served whole: %v", stats.DegradedShards)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("revived-replica results differ\n got: %v\nwant: %v", got, want)
	}
}

// TestReplicatedLeaseKeeperPromotes pins the background half of failover:
// with no ingest traffic at all, the lease keeper alone must notice a
// dead leader and promote the follower once the lease lapses.
func TestReplicatedLeaseKeeperPromotes(t *testing.T) {
	sc := replicaSharding()
	mono, rs, corpus := buildMonoAndReplicated(t, 3000, tklus.DefaultConfig(), sc, fastFailoverConfig(t))

	g := groupOwning(t, rs, corpus.Config.Cities[0].Center, sc.PrefixLen)
	oldLeader, oldEpoch := g.Leader(), g.Epoch()
	if err := g.KillReplica(oldLeader); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Leader() == oldLeader {
		if time.Now().After(deadline) {
			t.Fatalf("lease keeper never promoted a successor (leader still %q)", oldLeader)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := g.Epoch(); got <= oldEpoch {
		t.Fatalf("epoch after keeper promotion = %d, want > %d", got, oldEpoch)
	}

	q := wideQuery(corpus)
	want, _, err := mono.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := rs.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded() {
		t.Fatalf("promoted follower should serve whole: %v", stats.DegradedShards)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("keeper-promoted results differ\n got: %v\nwant: %v", got, want)
	}
}

// TestReplicatedStaleReadSurfacesLag pins the read-staleness contract:
// when the router must fail reads over to a follower that has NOT drained
// the leader's acknowledged stream, the answer is the follower's honest
// (stale) state and QueryStats.ReplicaLagSIDs reports exactly how many
// acknowledged records that answer is missing.
func TestReplicatedStaleReadSurfacesLag(t *testing.T) {
	sc := replicaSharding()
	rc := tklus.DefaultReplicationConfig()
	rc.Dir = t.TempDir()
	// Freeze the machinery: shippers poll hourly (followers never catch
	// up within the test) and the lease outlives the test (the keeper
	// never deposes the killed leader, so the group keeps reporting lag
	// against ITS stream).
	rc.ShipInterval = time.Hour
	rc.LeaseTTL = time.Hour
	mono, rs, corpus := buildMonoAndReplicated(t, 3000, tklus.DefaultConfig(), sc, rc)

	q := wideQuery(corpus)
	want, _, err := mono.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	const n = 25
	if err := rs.Ingest(liveExtras(corpus, n)...); err != nil {
		t.Fatal(err)
	}
	g := groupOwning(t, rs, corpus.Config.Cities[0].Center, sc.PrefixLen)
	if lag := g.LagRecords(followerOf(t, g)); lag != n {
		t.Fatalf("follower lag = %d, want %d (every acked record unapplied)", lag, n)
	}
	if err := g.KillReplica(g.Leader()); err != nil {
		t.Fatal(err)
	}

	got, stats, err := rs.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("stale read: %v", err)
	}
	if stats.Degraded() {
		t.Fatalf("stale follower read must not degrade: %v", stats.DegradedShards)
	}
	if stats.ReplicaLagSIDs != n {
		t.Errorf("ReplicaLagSIDs = %d, want %d", stats.ReplicaLagSIDs, n)
	}
	// The stale answer is the pre-ingest state — the follower serves what
	// it has, and the lag field is how the caller knows what that is.
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stale read differs from pre-ingest oracle\n got: %v\nwant: %v", got, want)
	}
}

// followerOf returns the name of some live non-leader replica.
func followerOf(t *testing.T, g *tklus.ReplicaGroup) string {
	t.Helper()
	leader := g.Leader()
	for _, r := range g.Replicas() {
		if r.Name() != leader {
			return r.Name()
		}
	}
	t.Fatalf("group %s has no follower", g.Shard())
	return ""
}

// TestReplicatedKillReviveCatchUp exercises lag accounting around a
// follower outage: a downed follower accumulates lag while the leader
// keeps acknowledging writes, and a revive drains it back to zero without
// spawning a second shipper onto the stream (duplicate applies would
// break byte-identity, caught here against the oracle).
func TestReplicatedKillReviveCatchUp(t *testing.T) {
	sc := replicaSharding()
	mono, rs, corpus := buildMonoAndReplicated(t, 3000, tklus.DefaultConfig(), sc, fastFailoverConfig(t))
	ctx := context.Background()

	g := groupOwning(t, rs, corpus.Config.Cities[0].Center, sc.PrefixLen)
	follower := followerOf(t, g)
	if err := g.KillReplica(follower); err != nil {
		t.Fatal(err)
	}

	const n = 30
	extras := liveExtras(corpus, n)
	if err := rs.Ingest(extras...); err != nil {
		t.Fatal(err)
	}
	if err := mono.Ingest(extras...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.LagRecords(follower) < n {
		if time.Now().After(deadline) {
			t.Fatalf("downed follower lag = %d, want %d", g.LagRecords(follower), n)
		}
		time.Sleep(time.Millisecond)
	}

	if err := g.ReviveReplica(follower); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := g.WaitCaughtUp(wctx); err != nil {
		t.Fatalf("revived follower never caught up: %v", err)
	}
	if lag := g.LagRecords(follower); lag != 0 {
		t.Fatalf("post-revive lag = %d, want 0", lag)
	}

	// Force reads onto the revived follower and check byte-identity — a
	// double-applied record would shift |P_u| and surface here.
	if err := g.KillReplica(g.Leader()); err != nil {
		t.Fatal(err)
	}
	q := wideQuery(corpus)
	want, _, err := mono.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := rs.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded() {
		t.Fatalf("revived follower should serve whole: %v", stats.DegradedShards)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("revived-follower results differ\n got: %v\nwant: %v", got, want)
	}
}

// TestReplicatedPostFailoverEquivalenceGrid is the satellite equivalence
// grid: after a leader kill and failover, the replicated tier must match
// the monolithic oracle across ε (the thread-popularity smoothing
// parameter, a build-time knob) × ranking × radius × window.
func TestReplicatedPostFailoverEquivalenceGrid(t *testing.T) {
	window := func(corpus *datagen.Corpus) *tklus.TimeWindow { return corpusWindow(corpus) }
	for _, eps := range []float64{0.1, 0.5} {
		t.Run(fmt.Sprintf("eps%.1f", eps), func(t *testing.T) {
			cfg := tklus.DefaultConfig()
			cfg.Engine.Params.Epsilon = eps
			sc := replicaSharding()
			mono, rs, corpus := buildMonoAndReplicated(t, 2500, cfg, sc, fastFailoverConfig(t))
			ctx := context.Background()

			extras := liveExtras(corpus, 20)
			if err := rs.Ingest(extras...); err != nil {
				t.Fatal(err)
			}
			if err := mono.Ingest(extras...); err != nil {
				t.Fatal(err)
			}
			g := groupOwning(t, rs, corpus.Config.Cities[0].Center, sc.PrefixLen)
			oldLeader := g.Leader()
			if err := g.KillReplica(oldLeader); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for g.Leader() == oldLeader {
				if time.Now().After(deadline) {
					t.Fatal("failover never completed")
				}
				time.Sleep(5 * time.Millisecond)
			}
			wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			if err := rs.WaitCaughtUp(wctx); err != nil {
				t.Fatal(err)
			}
			cancel()

			for _, ranking := range []tklus.Ranking{tklus.SumScore, tklus.MaxScore} {
				for _, radius := range []float64{8, 40} {
					for _, win := range []*tklus.TimeWindow{nil, window(corpus)} {
						q := tklus.Query{
							Loc:        corpus.Config.Cities[0].Center,
							RadiusKm:   radius,
							Keywords:   []string{"pizza", "restaurant"},
							K:          10,
							Ranking:    ranking,
							TimeWindow: win,
						}
						name := fmt.Sprintf("%v/r%.0f/win%v", ranking, radius, win != nil)
						want, _, err := mono.Search(ctx, q)
						if err != nil {
							t.Fatalf("%s: mono: %v", name, err)
						}
						got, stats, err := rs.Search(ctx, q)
						if err != nil {
							t.Fatalf("%s: replicated: %v", name, err)
						}
						if stats.Degraded() {
							t.Errorf("%s: degradation: %v", name, stats.DegradedShards)
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s: post-failover results differ\n got: %v\nwant: %v", name, got, want)
						}
					}
				}
			}
		})
	}
}
