package tklus_test

import (
	"context"
	"sync"
	"testing"
	"time"

	tklus "repro"
)

// TestSaveRacesIngest pins the Save/Ingest consistency contract: a
// checkpoint running concurrently with live ingest (and searches) must
// neither trip the race detector nor commit a snapshot that fails to load.
// Before the fix, Save gob-encoded the popularity bounds with no lock while
// Ingest raised them under the bounds mutex — a data race -race catches
// here, and a torn map read in production. This file deliberately uses only
// the Build/Ingest/Save/Search/Load surface so it compiles against the
// pre-fix code and demonstrates the failure.
func TestSaveRacesIngest(t *testing.T) {
	posts, loc, roots := ingestCorpus()
	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ingester: keeps appending rows and raising bounds
		defer wg.Done()
		at := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			at = at.Add(time.Millisecond)
			r := tklus.NewReply(800+tklus.UserID(i%50), at, loc, "checkpoint me", roots[i%len(roots)])
			if err := sys.Ingest(r); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // searcher rides along: reads everything Save also reads
		defer wg.Done()
		q := tklus.Query{
			Loc: loc, RadiusKm: 5, Keywords: []string{"hotel"},
			K: 3, Ranking: tklus.MaxScore,
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := sys.Search(context.Background(), q); err != nil {
				t.Errorf("search: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 6; i++ {
		if err := sys.Save(dir); err != nil {
			t.Errorf("save %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Whatever point-in-time view the last checkpoint caught must load.
	if _, err := tklus.Load(dir, tklus.DefaultConfig()); err != nil {
		t.Fatalf("snapshot saved during live ingest did not load: %v", err)
	}
}
