package tklus_test

import (
	"context"
	"errors"
	"testing"
	"time"

	tklus "repro"
	"repro/internal/datagen"
)

// TestSearcherCancellationContract pins the API-surface contract of the
// consolidated Searcher interface: every implementation — monolithic
// system, partitioned system, sharded router, federation, and the
// admission-control wrapper — observes context cancellation and surfaces
// it as the context's error, never as a result or a mistyped sentinel.
func TestSearcherCancellationContract(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.NumUsers = 200
	cfg.NumPosts = 3000
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tklus.Build(corpus.Posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	part, err := tklus.BuildPartitioned(corpus.Posts, tklus.DefaultConfig(), 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sc := tklus.DefaultShardingConfig()
	sc.NumShards = 2
	sharded, err := tklus.BuildSharded(corpus.Posts, tklus.DefaultConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	fed := tklus.NewFederation(map[string]*tklus.System{"home": sys})
	admitted := tklus.NewAdmissionControl(sys, tklus.DefaultAdmissionOptions())
	rc := tklus.DefaultReplicationConfig()
	rc.Dir = t.TempDir()
	replicated, err := tklus.BuildReplicatedSharded(corpus.Posts, tklus.DefaultConfig(), sc, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer replicated.Close()

	searchers := map[string]tklus.Searcher{
		"System":            sys,
		"PartitionedSystem": part,
		"ShardedSystem":     sharded,
		"Federation":        fed,
		"AdmissionControl":  admitted,
		"ReplicatedSharded": replicated,
	}
	q := tklus.Query{
		Loc:      corpus.Config.Cities[0].Center,
		RadiusKm: 15,
		Keywords: []string{"restaurant"},
		K:        5,
		Semantic: tklus.Or,
		Ranking:  tklus.MaxScore,
	}

	for name, sr := range searchers {
		t.Run(name, func(t *testing.T) {
			// Sanity: the searcher answers a live context.
			if _, _, err := sr.Search(context.Background(), q); err != nil {
				t.Fatalf("%s: live-context search failed: %v", name, err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, _, err := sr.Search(ctx, q)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: canceled-context error = %v, want context.Canceled", name, err)
			}
			if errors.Is(err, tklus.ErrOverloaded) {
				t.Errorf("%s: cancellation misreported as overload", name)
			}
			// Typed-sentinel half of the contract: a malformed query is
			// ErrBadQuery from every implementation, never a replication
			// or availability sentinel.
			bad := q
			bad.K = 0
			_, _, err = sr.Search(context.Background(), bad)
			if !errors.Is(err, tklus.ErrBadQuery) {
				t.Errorf("%s: malformed-query error = %v, want ErrBadQuery", name, err)
			}
			if errors.Is(err, tklus.ErrStaleEpoch) || errors.Is(err, tklus.ErrReplicaDown) {
				t.Errorf("%s: bad query misreported as a replication fault: %v", name, err)
			}
		})
	}
}
