package tklus_test

import (
	"context"
	"testing"
	"time"

	tklus "repro"
	"repro/internal/datagen"
)

func buildSystem(t testing.TB, posts int) (*tklus.System, *datagen.Corpus) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.NumUsers = 500
	cfg.NumPosts = posts
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tklus.Build(corpus.Posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys, corpus
}

func TestBuildAndSearchEndToEnd(t *testing.T) {
	sys, corpus := buildSystem(t, 8000)
	if sys.IndexStats.Keys == 0 {
		t.Fatal("index has no keys")
	}
	if sys.BuildTime <= 0 {
		t.Error("build time not measured")
	}
	toronto := corpus.Config.Cities[0].Center
	for _, ranking := range []int{0, 1} {
		q := tklus.Query{
			Loc: toronto, RadiusKm: 15, Keywords: []string{"restaurant"},
			K: 5, Semantic: tklus.Or,
		}
		if ranking == 1 {
			q.Ranking = tklus.MaxScore
		}
		res, stats, err := sys.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatalf("no results for restaurant near Toronto (ranking %d)", ranking)
		}
		if len(res) > 5 {
			t.Fatalf("more than k results: %d", len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Fatal("results not sorted by score")
			}
		}
		if stats.Cells == 0 || stats.Candidates == 0 {
			t.Errorf("stats look empty: %+v", stats)
		}
	}
}

func TestResetStats(t *testing.T) {
	sys, corpus := buildSystem(t, 3000)
	q := tklus.Query{
		Loc: corpus.Config.Cities[0].Center, RadiusKm: 10,
		Keywords: []string{"pizza"}, K: 5,
	}
	if _, _, err := sys.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	if sys.FS.Stats().BlocksRead != 0 || sys.Index.Fetches() != 0 || sys.DB.Stats().PageReads != 0 {
		t.Error("ResetStats left counters nonzero")
	}
}

func TestBuildRejectsEmptyCorpus(t *testing.T) {
	if _, err := tklus.Build(nil, tklus.DefaultConfig()); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestPostConstructors(t *testing.T) {
	loc := tklus.Point{Lat: 43.68, Lon: -79.37}
	at := time.Date(2013, 1, 15, 12, 0, 0, 0, time.UTC)
	root := tklus.NewPost(7, at, loc, "I'm at the Four Seasons Hotel in Toronto")
	if root.SID != tklus.PostID(at.UnixNano()) {
		t.Errorf("SID = %d, want UnixNano", root.SID)
	}
	wantWords := []string{"i'm", "four", "season", "hotel", "toronto"}
	_ = wantWords // word pipeline verified in textutil; here check keywords present
	found := false
	for _, w := range root.Words {
		if w == "hotel" {
			found = true
		}
	}
	if !found {
		t.Errorf("NewPost words %v missing 'hotel'", root.Words)
	}
	if err := root.Validate(); err != nil {
		t.Errorf("NewPost produced invalid post: %v", err)
	}

	reply := tklus.NewReply(8, at.Add(time.Minute), loc, "great choice!", root)
	if reply.Kind != tklus.Reply || reply.RSID != root.SID || reply.RUID != root.UID {
		t.Errorf("NewReply linkage wrong: %+v", reply)
	}
	fwd := tklus.NewForward(9, at.Add(2*time.Minute), loc, "RT great hotel", root)
	if fwd.Kind != tklus.Forward || fwd.RSID != root.SID {
		t.Errorf("NewForward linkage wrong: %+v", fwd)
	}
	if err := reply.Validate(); err != nil {
		t.Errorf("reply invalid: %v", err)
	}
}

func TestEvidenceReturnsMatchingTexts(t *testing.T) {
	sys, corpus := buildSystem(t, 6000)
	toronto := corpus.Config.Cities[0].Center
	q := tklus.Query{
		Loc: toronto, RadiusKm: 15, Keywords: []string{"restaurant"}, K: 3,
		Ranking: tklus.MaxScore,
	}
	res, _, err := sys.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Skip("no results in this corpus slice")
	}
	texts, err := sys.Evidence(q, res[0].UID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) == 0 {
		t.Fatal("top user has no evidence tweets")
	}
	for _, text := range texts {
		if text == "" {
			t.Error("empty evidence text")
		}
	}
	// Limit is respected.
	one, err := sys.Evidence(q, res[0].UID, 1)
	if err != nil || len(one) != 1 {
		t.Errorf("limit 1 returned %d texts (%v)", len(one), err)
	}
	// A user that is no candidate yields no evidence.
	none, err := sys.Evidence(q, 99999999, 0)
	if err != nil || len(none) != 0 {
		t.Errorf("non-candidate evidence = %v, %v", none, err)
	}
}

func TestEndToEndWithRawTextPosts(t *testing.T) {
	// Build a tiny corpus through the public constructors only.
	loc := tklus.Point{Lat: 43.68, Lon: -79.37}
	t0 := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	hotelPost := tklus.NewPost(1, t0, loc, "Marriott hotel downtown is lovely")
	var posts []*tklus.Post
	posts = append(posts, hotelPost)
	for i := 0; i < 5; i++ {
		posts = append(posts, tklus.NewReply(tklus.UserID(10+i),
			t0.Add(time.Duration(i+1)*time.Minute), loc, "so true", hotelPost))
	}
	posts = append(posts, tklus.NewPost(2, t0.Add(time.Hour), loc, "best pizza in town"))

	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sys.Search(context.Background(), tklus.Query{
		Loc: loc, RadiusKm: 5, Keywords: []string{"hotels"}, K: 3, Ranking: tklus.MaxScore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].UID != 1 {
		t.Fatalf("results = %+v, want only user 1", res)
	}
	// "hotels" stems to "hotel", matching the indexed stem — the query and
	// document pipelines agree.
}
