package tklus_test

import (
	"context"
	"fmt"
	"time"

	tklus "repro"
)

// Example builds a four-tweet corpus and runs a max-score TkLUS query.
func Example() {
	downtown := tklus.Point{Lat: 43.6839, Lon: -79.3736}
	t0 := time.Date(2013, 1, 15, 9, 0, 0, 0, time.UTC)

	root := tklus.NewPost(1, t0, downtown, "The Marriott hotel breakfast is excellent")
	posts := []*tklus.Post{
		root,
		tklus.NewReply(2, t0.Add(time.Minute), downtown, "so true!", root),
		tklus.NewReply(3, t0.Add(2*time.Minute), downtown, "agreed", root),
		tklus.NewPost(4, t0.Add(time.Hour), downtown, "hotel gyms are underrated"),
	}

	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		panic(err)
	}
	results, _, err := sys.Search(context.Background(), tklus.Query{
		Loc:      downtown,
		RadiusKm: 10,
		Keywords: []string{"hotel"},
		K:        2,
		Ranking:  tklus.MaxScore,
	})
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("%d. user %d\n", i+1, r.UID)
	}
	// Output:
	// 1. user 1
	// 2. user 4
}

// ExampleSystem_Evidence shows how to retrieve the tweets that made a
// returned user a candidate — the paper's "(userId, tweet content)" lines.
func ExampleSystem_Evidence() {
	loc := tklus.Point{Lat: 43.68, Lon: -79.37}
	t0 := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	posts := []*tklus.Post{
		tklus.NewPost(7, t0, loc, "best ramen restaurant in town"),
		tklus.NewPost(7, t0.Add(time.Hour), loc, "back at my favourite restaurant"),
		tklus.NewPost(8, t0.Add(2*time.Hour), loc, "the weather is lovely"),
	}
	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		panic(err)
	}
	q := tklus.Query{Loc: loc, RadiusKm: 5, Keywords: []string{"restaurant"}, K: 1}
	results, _, _ := sys.Search(context.Background(), q)
	texts, _ := sys.Evidence(q, results[0].UID, 10)
	for _, text := range texts {
		fmt.Println(text)
	}
	// Output:
	// best ramen restaurant in town
	// back at my favourite restaurant
}

// ExampleSystem_Thread materializes a reply cascade (Definition 3) and its
// popularity score (Definition 4).
func ExampleSystem_Thread() {
	loc := tklus.Point{Lat: 43.68, Lon: -79.37}
	t0 := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	root := tklus.NewPost(1, t0, loc, "free pizza at the office")
	reply1 := tklus.NewReply(2, t0.Add(time.Minute), loc, "on my way", root)
	posts := []*tklus.Post{
		root,
		reply1,
		tklus.NewReply(3, t0.Add(2*time.Minute), loc, "save me a slice", root),
		tklus.NewReply(4, t0.Add(3*time.Minute), loc, "too late, it's gone", reply1),
	}
	sys, err := tklus.Build(posts, tklus.DefaultConfig())
	if err != nil {
		panic(err)
	}
	nodes, popularity := sys.Thread(root.SID)
	fmt.Printf("nodes: %d, popularity: %.3f\n", len(nodes), popularity)
	for _, n := range nodes {
		fmt.Printf("level %d: user %d\n", n.Level, n.UID)
	}
	// Output:
	// nodes: 4, popularity: 1.333
	// level 1: user 1
	// level 2: user 2
	// level 2: user 3
	// level 3: user 4
}

// ExampleNewPostFromText geo-tags an untagged tweet from a place name in
// its text (the paper's future-work direction).
func ExampleNewPostFromText() {
	g := tklus.DefaultGazetteer()
	p, err := tklus.NewPostFromText(9,
		time.Date(2013, 2, 1, 12, 0, 0, 0, time.UTC),
		"Nothing beats brunch in downtown Toronto", g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("inferred location: %.4f, %.4f\n", p.Loc.Lat, p.Loc.Lon)
	// Output:
	// inferred location: 43.6510, -79.3822
}
