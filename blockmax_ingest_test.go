package tklus_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	tklus "repro"
)

// blockmaxCorpus builds a corpus dense enough that, with 8-posting blocks,
// every hot term's postings list spans several blocks: 40 users, each with
// one root near the query point (alternating hotel / restaurant / both) and
// a varying number of replies so thread popularity spreads the scores out.
func blockmaxCorpus() (posts []*tklus.Post, loc tklus.Point, roots []*tklus.Post) {
	loc = tklus.Point{Lat: 43.7, Lon: -79.4}
	at := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	next := func() time.Time { at = at.Add(time.Second); return at }
	texts := []string{"great hotel downtown", "cozy restaurant nearby", "hotel restaurant combo"}
	for u := tklus.UserID(1); u <= 40; u++ {
		p := tklus.Point{Lat: loc.Lat + float64(u%7)*0.002, Lon: loc.Lon - float64(u%5)*0.002}
		root := tklus.NewPost(u, next(), p, texts[int(u)%len(texts)])
		posts = append(posts, root)
		roots = append(roots, root)
		for i := 0; i < int(u)%5; i++ {
			posts = append(posts, tklus.NewReply(200+u, next(), p, "nice view", root))
		}
	}
	return posts, loc, roots
}

// TestBlockMaxLosslessAfterIngest checks that block-max early termination
// stays exact after live ingest has raised thread-popularity bounds past
// anything the batch build observed. Two systems over the same blocked
// index (8-posting blocks) receive identical reply batches — one runs the
// default block-max + pruning engine, the other an exhaustive oracle with
// both off — and every query in a semantics × ranking × keywords grid must
// return bit-identical results before and after the ingest.
func TestBlockMaxLosslessAfterIngest(t *testing.T) {
	posts, loc, roots := blockmaxCorpus()

	cfg := tklus.DefaultConfig()
	cfg.Index.BlockSize = 8
	sys, err := tklus.Build(posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only the block-max system filters through the row-meta snapshot; the
	// oracle keeps fetching rows. The grid equality below then also proves
	// the snapshot-served filter identical to the row-fetching one, both
	// over the frozen corpus and through the ingest overlay.
	sys.EnableRowMetaSnapshot()
	oracleCfg := tklus.DefaultConfig()
	oracleCfg.Index.BlockSize = 8
	oracleCfg.Engine.UseBlockMax = false
	oracleCfg.Engine.UsePruning = false
	oracle, err := tklus.Build(posts, oracleCfg)
	if err != nil {
		t.Fatal(err)
	}

	var workSaved int64
	grid := func(phase string) {
		t.Helper()
		for _, keywords := range [][]string{{"hotel"}, {"hotel", "restaurant"}} {
			for _, sem := range []tklus.Semantic{tklus.Or, tklus.And} {
				for _, ranking := range []tklus.Ranking{tklus.SumScore, tklus.MaxScore} {
					q := tklus.Query{
						Loc: loc, RadiusKm: 8, Keywords: keywords,
						K: 5, Semantic: sem, Ranking: ranking,
					}
					got, gs, err := sys.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					want, _, err := oracle.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s %v %v %v", phase, keywords, sem, ranking)
					if len(got) != len(want) {
						t.Fatalf("%s: %v vs oracle %v", label, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("%s rank %d: %+v, oracle %+v", label, i, got[i], want[i])
						}
					}
					workSaved += gs.BlocksSkipped + gs.ThreadsPruned
				}
			}
		}
	}
	grid("pre-ingest")

	// Grow a few mid-list threads far past the batch-computed bounds; both
	// systems see the exact same replies, so RaiseForRoot is the only thing
	// keeping the block-max engine's per-block φ bounds sound.
	at := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	var replies []*tklus.Post
	for _, ri := range []int{3, 17, 29} {
		for i := 0; i < 12; i++ {
			at = at.Add(time.Second)
			replies = append(replies, tklus.NewReply(900+tklus.UserID(i), at, loc, "suddenly busy", roots[ri]))
		}
	}
	if err := sys.Ingest(replies...); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Ingest(replies...); err != nil {
		t.Fatal(err)
	}
	grid("post-ingest")

	if workSaved == 0 {
		t.Error("block-max engine neither skipped a block nor pruned a thread across the grid")
	}
}
