package tklus_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	tklus "repro"
)

// stubSearcher is a controllable backend: it blocks on release (when
// non-nil) and returns canned stats, so tests can hold admission slots
// occupied and feed the cost model known work.
type stubSearcher struct {
	release chan struct{}
	stats   tklus.QueryStats
}

func (s *stubSearcher) Search(ctx context.Context, q tklus.Query) ([]tklus.UserResult, *tklus.QueryStats, error) {
	if s.release != nil {
		select {
		case <-s.release:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	st := s.stats
	return nil, &st, nil
}

// waitForQueued polls until the controller reports n queued queries.
func waitForQueued(t *testing.T, ac *tklus.AdmissionControl, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for ac.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d queued queries (stats %+v)", n, ac.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionQueueFull fills the single slot and the two queue
// positions, then checks the next arrival is shed instantly with
// ErrOverloaded rather than queued — the bounded queue is what keeps the
// shed path O(1) under arbitrary offered load.
func TestAdmissionQueueFull(t *testing.T) {
	stub := &stubSearcher{release: make(chan struct{})}
	ac := tklus.NewAdmissionControl(stub, tklus.AdmissionOptions{
		MaxConcurrent: 1, MaxQueue: 1, MaxWait: 5 * time.Second,
	})
	q := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel"}}

	// One admitted and blocked in the backend, two waiting: with
	// MaxConcurrent=1 and MaxQueue=1 the shed threshold is waiters > 2.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ac.Search(context.Background(), q)
		}()
	}
	waitForQueued(t, ac, 2)

	_, _, err := ac.Search(context.Background(), q)
	if !errors.Is(err, tklus.ErrOverloaded) {
		t.Fatalf("over-queue arrival error = %v, want ErrOverloaded", err)
	}
	if st := ac.Stats(); st.ShedQueueFull != 1 {
		t.Errorf("ShedQueueFull = %d, want 1 (stats %+v)", st.ShedQueueFull, st)
	}

	close(stub.release)
	wg.Wait()
	if st := ac.Stats(); st.Admitted != 3 {
		t.Errorf("Admitted = %d, want 3 after release (stats %+v)", st.Admitted, st)
	}
}

// TestAdmissionWaitTimeout holds the only slot and checks that a queued
// query is shed with ErrOverloaded once MaxWait elapses without a slot
// freeing.
func TestAdmissionWaitTimeout(t *testing.T) {
	stub := &stubSearcher{release: make(chan struct{})}
	defer close(stub.release)
	ac := tklus.NewAdmissionControl(stub, tklus.AdmissionOptions{
		MaxConcurrent: 1, MaxQueue: 4, MaxWait: 20 * time.Millisecond,
	})
	q := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel"}}

	go ac.Search(context.Background(), q)
	for ac.Stats().Admitted == 0 {
		time.Sleep(time.Millisecond)
	}

	_, _, err := ac.Search(context.Background(), q)
	if !errors.Is(err, tklus.ErrOverloaded) {
		t.Fatalf("timed-out wait error = %v, want ErrOverloaded", err)
	}
	if st := ac.Stats(); st.ShedTimeout != 1 {
		t.Errorf("ShedTimeout = %d, want 1 (stats %+v)", st.ShedTimeout, st)
	}
}

// TestAdmissionCancelWhileQueued checks the queued path honors context
// cancellation: the caller gets its ctx.Err(), not ErrOverloaded, and no
// shed counter moves.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	stub := &stubSearcher{release: make(chan struct{})}
	defer close(stub.release)
	ac := tklus.NewAdmissionControl(stub, tklus.AdmissionOptions{
		MaxConcurrent: 1, MaxQueue: 4, MaxWait: 5 * time.Second,
	})
	q := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel"}}

	go ac.Search(context.Background(), q)
	for ac.Stats().Admitted == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := ac.Search(ctx, q)
		errCh <- err
	}()
	waitForQueued(t, ac, 1)
	cancel()
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-while-queued error = %v, want context.Canceled", err)
	}
	if errors.Is(err, tklus.ErrOverloaded) {
		t.Error("cancellation misreported as overload")
	}
	if st := ac.Stats(); st.ShedQueueFull+st.ShedCost+st.ShedTimeout != 0 {
		t.Errorf("cancellation moved a shed counter: %+v", st)
	}
}

// TestAdmissionCancelRefundsBudget pins the cost-accounting half of the
// cancellation contract: gate 2 charges the token bucket BEFORE the query
// queues for a slot, so a query canceled while queued must hand the
// charge back — it will do no work. Before the fix the charge leaked, so
// a burst of canceled queries silently drained the bucket and the next
// legitimate query of the same shape was shed as "over budget".
func TestAdmissionCancelRefundsBudget(t *testing.T) {
	stub := &stubSearcher{
		release: make(chan struct{}, 16),
		stats: tklus.QueryStats{
			PostingsFetched: 500, Candidates: 300, ThreadsBuilt: 200, // cost 1000
		},
	}
	ac := tklus.NewAdmissionControl(stub, tklus.AdmissionOptions{
		MaxConcurrent: 1, MaxQueue: 4, MaxWait: 5 * time.Second,
		CostBudget: 0.001, // refill is negligible over the test's lifetime
		CostBurst:  1000,  // exactly one learned-shape admission in the bucket
	})
	qA := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel"}}
	qB := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel", "pizza"}}

	// Learn shape A's cost (admitted at estimate 0, observes 1000).
	stub.release <- struct{}{}
	if _, _, err := ac.Search(context.Background(), qA); err != nil {
		t.Fatalf("learning query: %v", err)
	}
	if est := ac.EstimateFor(qA); est != 1000 {
		t.Fatalf("learned estimate = %v, want 1000", est)
	}

	// Occupy the only slot with shape B (unseen, charges nothing), then
	// queue a shape-A query — its 1000-unit charge empties the bucket —
	// and cancel it while it waits.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ac.Search(context.Background(), qB)
	}()
	for ac.Stats().Admitted < 2 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := ac.Search(ctx, qA)
		errCh <- err
	}()
	waitForQueued(t, ac, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-while-queued error = %v, want context.Canceled", err)
	}
	if est := ac.EstimateFor(qA); est != 1000 {
		t.Fatalf("canceled query polluted the EWMA: estimate = %v, want 1000", est)
	}

	// The canceled query's charge must be back in the bucket: the next
	// shape-A query passes gate 2 instead of shedding "over budget".
	stub.release <- struct{}{} // free the slot holder
	stub.release <- struct{}{} // and the query under test
	if _, _, err := ac.Search(context.Background(), qA); err != nil {
		t.Fatalf("post-cancel query shed: %v (the canceled query's charge was not refunded)", err)
	}
	if st := ac.Stats(); st.ShedCost != 0 {
		t.Errorf("ShedCost = %d, want 0 — cancellation charged the budget (stats %+v)", st.ShedCost, st)
	}
	wg.Wait()
}

// TestAdmissionCanceledWinnerReleasesSlot pins the slot half of the
// contract: when a query's context is already canceled as it wins a slot
// (select picks arbitrarily among ready cases), it must release the slot
// immediately and return ctx.Err() without counting as admitted or
// running the backend. The loop drives both select arms; before the fix
// roughly half the iterations ran the backend on a dead context.
func TestAdmissionCanceledWinnerReleasesSlot(t *testing.T) {
	stub := &stubSearcher{stats: tklus.QueryStats{Candidates: 1000}} // nil release: backend returns instantly if reached
	ac := tklus.NewAdmissionControl(stub, tklus.AdmissionOptions{
		MaxConcurrent: 1, MaxQueue: 4, MaxWait: 5 * time.Second,
	})
	q := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel"}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead on arrival: the slot is free AND ctx.Done is ready
	for i := 0; i < 50; i++ {
		_, _, err := ac.Search(ctx, q)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	st := ac.Stats()
	if st.Admitted != 0 {
		t.Errorf("Admitted = %d, want 0 — canceled queries reached the backend", st.Admitted)
	}
	if st.Queued != 0 {
		t.Errorf("Queued = %d, want 0 — a canceled winner leaked its waiter count", st.Queued)
	}
	if est := ac.EstimateFor(q); est != 0 {
		t.Errorf("estimate = %v, want 0 — a canceled query's run polluted the EWMA", est)
	}
	// The slot must actually be free: a live query still goes through.
	if _, _, err := ac.Search(context.Background(), q); err != nil {
		t.Errorf("live query after canceled winners: %v (slot leaked)", err)
	}
}

// TestAdmissionCostModel checks the learn-then-shed loop: an unseen
// query shape is admitted optimistically with estimate zero, its real
// cost is learned from the QueryStats it produces, and the next query of
// that shape is shed when the learned cost exceeds the token bucket.
func TestAdmissionCostModel(t *testing.T) {
	stub := &stubSearcher{stats: tklus.QueryStats{
		PostingsFetched: 500, Candidates: 300, ThreadsBuilt: 200, // cost 1000
	}}
	ac := tklus.NewAdmissionControl(stub, tklus.AdmissionOptions{
		MaxConcurrent: 4,
		CostBudget:    1, // refills 1 unit/s; burst defaults to 2
	})
	q := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel"}}

	if est := ac.EstimateFor(q); est != 0 {
		t.Fatalf("unseen shape estimate = %v, want 0", est)
	}
	if _, _, err := ac.Search(context.Background(), q); err != nil {
		t.Fatalf("first (unseen-shape) query not admitted: %v", err)
	}
	if est := ac.EstimateFor(q); est != 1000 {
		t.Fatalf("learned estimate = %v, want 1000", est)
	}

	_, _, err := ac.Search(context.Background(), q)
	if !errors.Is(err, tklus.ErrOverloaded) {
		t.Fatalf("over-budget shape error = %v, want ErrOverloaded", err)
	}
	if st := ac.Stats(); st.ShedCost != 1 {
		t.Errorf("ShedCost = %d, want 1 (stats %+v)", st.ShedCost, st)
	}

	// A different shape (two keywords) has its own cell: still admitted.
	q2 := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel", "pizza"}}
	if _, _, err := ac.Search(context.Background(), q2); err != nil {
		t.Errorf("different shape not admitted: %v", err)
	}
}

// TestAdmissionEWMALearning checks the estimate tracks a moving cost:
// after a cheaper observation the EWMA moves toward it with alpha 0.2.
func TestAdmissionEWMALearning(t *testing.T) {
	stub := &stubSearcher{stats: tklus.QueryStats{Candidates: 1000}}
	ac := tklus.NewAdmissionControl(stub, tklus.AdmissionOptions{MaxConcurrent: 1})
	q := tklus.Query{RadiusKm: 10, K: 5, Keywords: []string{"hotel"}}
	ctx := context.Background()

	if _, _, err := ac.Search(ctx, q); err != nil {
		t.Fatal(err)
	}
	stub.stats = tklus.QueryStats{Candidates: 500}
	if _, _, err := ac.Search(ctx, q); err != nil {
		t.Fatal(err)
	}
	if est := ac.EstimateFor(q); math.Abs(est-900) > 1e-6 {
		t.Errorf("EWMA after 1000 then 500 = %v, want ~900", est)
	}
}
