// Command tklus-index builds the hybrid spatial-keyword index over a JSONL
// corpus and reports the construction statistics of Figures 5 and 6
// (MapReduce counters, postings size, forward index size).
//
// The simulated DFS lives in memory, so this tool is a construction
// dry-run / profiler rather than a persistent indexer; persistent serving
// is what cmd/tklus-query does end to end.
//
// Usage:
//
//	tklus-index -in corpus.jsonl -geohash 4 -mappers 4 -reducers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	tklus "repro"
	"repro/internal/ingest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-index: ")

	var (
		in       = flag.String("in", "corpus.jsonl", "input corpus")
		format   = flag.String("format", "jsonl", "input format: jsonl | twitter (REST v1.1 statuses)")
		geohash  = flag.Int("geohash", 4, "geohash encoding length (1-12)")
		mappers  = flag.Int("mappers", 4, "MapReduce map parallelism")
		reducers = flag.Int("reducers", 4, "MapReduce reduce parallelism")
		save     = flag.String("save", "", "persist the built system to this directory")
	)
	flag.Parse()

	posts, err := ingest.Load(*in, *format)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tklus.DefaultConfig()
	cfg.Index.GeohashLen = *geohash
	cfg.Index.Mappers = *mappers
	cfg.Index.Reducers = *reducers

	start := time.Now()
	sys, err := tklus.Build(posts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := sys.IndexStats
	fmt.Printf("corpus:            %d posts\n", len(posts))
	fmt.Printf("geohash length:    %d\n", *geohash)
	fmt.Printf("build time:        %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("index keys:        %d distinct (geohash, term) pairs\n", st.Keys)
	fmt.Printf("postings size:     %d bytes in DFS (%d files)\n", st.PostingsBytes, len(sys.FS.List()))
	fmt.Printf("forward index:     %d bytes in memory\n", st.ForwardBytes)
	fmt.Printf("map records:       %d in, %d out\n",
		st.InvertedJob.MapInputRecords, st.InvertedJob.MapOutputRecords)
	fmt.Printf("reduce keys:       %d\n", st.InvertedJob.ReduceInputKeys)
	fmt.Printf("shuffled bytes:    %d\n", st.InvertedJob.ShuffledBytes)
	fmt.Printf("max reply fanout:  %d (t_m of Definition 11)\n", sys.DB.MaxReplyFanout())
	fmt.Printf("global pop bound:  %.3f (largest thread score)\n", sys.Bounds.MaxObserved)

	if *save != "" {
		if err := sys.Save(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved to:          %s (load with tklus-query -load)\n", *save)
	}
}
