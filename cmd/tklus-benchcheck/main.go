// Command tklus-benchcheck gates the benchmark artifacts tklus-bench
// writes.
//
// The parallel gate (-in) reads BENCH_parallel.json and exits non-zero
// when the parallel configuration's overall p95 latency fails to beat the
// sequential baseline by the required factor — a change that silently
// serializes the pipeline or breaks the popularity cache fails the build
// instead of shipping (the Makefile's bench-compare lane).
//
// The sharded gate (-sharded-in) reads BENCH_sharded.json and exits
// non-zero unless the shard-count sweep held the tier's correctness
// guarantees: merged results identical to the monolithic build on every
// query, and zero degraded queries over healthy shards (the bench-sharded
// lane).
//
// The batchio gate (-batchio-in) reads BENCH_batchio.json and exits
// non-zero unless results were byte-identical across the point-lookup,
// batched, and CSR-snapshot configurations AND the snapshot configuration
// beat the point-lookup baseline's p95 by the required factor (the
// bench-batchio lane).
//
// The blockmax gate (-blockmax-in) reads BENCH_blockmax.json and exits
// non-zero unless results were byte-identical across the exhaustive,
// Def.-11-only and block-max configurations, the block-max configuration
// actually skipped postings blocks, AND it beat the exhaustive baseline's
// p95 on the sum-ranking classes by the required factor (the bench-blockmax
// lane).
//
// The tracing gate (-tracing-in) reads BENCH_tracing.json and exits
// non-zero unless the disabled-tracer pass stayed within the noise band
// of the no-tracer baseline, the enabled-tracer pass cost less than the
// overhead budget, and results were identical across all passes (the
// bench-tracing lane).
//
// The load gate (-load-in) reads BENCH_load.json and exits non-zero
// unless the open-loop sweep demonstrates the overload contract: at
// least three offered rates with the top one at ≥2× measured capacity,
// the admission-controlled arm shedding under overload while the
// unprotected baseline's p99 collapses to at least the required multiple
// of the admitted p99, and admitted goodput holding a healthy fraction
// of capacity (the bench-load lane).
//
// The replication gate (-replication-in) reads BENCH_replication.json and
// exits non-zero unless the replicated tier answered byte-identically to
// the monolithic oracle both with every replica healthy and after every
// shard's leader was killed, with zero degraded queries, and every group
// re-elected a leader within the failover budget (a multiple of the
// per-shard deadline; the bench-replication lane).
//
// Usage:
//
//	tklus-benchcheck -in BENCH_parallel.json -min-p95-speedup 1.0
//	tklus-benchcheck -in "" -sharded-in BENCH_sharded.json
//	tklus-benchcheck -in "" -batchio-in BENCH_batchio.json -min-batchio-speedup 2.0
//	tklus-benchcheck -in "" -blockmax-in BENCH_blockmax.json -min-blockmax-speedup 2.0
//	tklus-benchcheck -in "" -tracing-in BENCH_tracing.json -max-tracing-overhead 5.0
//	tklus-benchcheck -in "" -load-in BENCH_load.json -min-collapse-ratio 2.0
//	tklus-benchcheck -in "" -replication-in BENCH_replication.json -max-failover-x 2.0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-benchcheck: ")

	var (
		in = flag.String("in", "BENCH_parallel.json",
			"parallel comparison snapshot written by tklus-bench")
		minSpeedup = flag.Float64("min-p95-speedup", 1.0,
			"fail unless overall p95 speedup (sequential/parallel) is at least this")
		shardedIn = flag.String("sharded-in", "",
			"sharded scaling snapshot written by tklus-bench -sharded (empty skips the sharded gate)")
		batchioIn = flag.String("batchio-in", "",
			"batched-IO snapshot written by tklus-bench -batchio (empty skips the batchio gate)")
		minBatchioSpeedup = flag.Float64("min-batchio-speedup", 2.0,
			"fail unless the CSR-snapshot configuration's p95 speedup over point lookups is at least this")
		blockmaxIn = flag.String("blockmax-in", "",
			"block-max traversal snapshot written by tklus-bench -blockmax (empty skips the blockmax gate)")
		minBlockmaxSpeedup = flag.Float64("min-blockmax-speedup", 2.0,
			"fail unless the block-max configuration's p95 speedup over the exhaustive baseline on sum-ranking classes is at least this")
		segmentsIn = flag.String("segments-in", "",
			"storage-engine snapshot written by tklus-bench -segments (empty skips the segments gate)")
		minSegmentsSpeedup = flag.Float64("min-segments-speedup", 2.0,
			"fail unless the segment store's cold-read p95 speedup over the paged baseline is at least this")
		tracingIn = flag.String("tracing-in", "",
			"tracing-overhead snapshot written by tklus-bench -tracing (empty skips the tracing gate)")
		maxTracingOverhead = flag.Float64("max-tracing-overhead", 5.0,
			"fail when the enabled-tracer p95 overhead over the no-tracer baseline exceeds this percentage")
		tracingNoise = flag.Float64("tracing-noise", 10.0,
			"fail when the disabled-tracer p95 drifts from the no-tracer baseline by more than this percentage (run-to-run noise band)")
		loadIn = flag.String("load-in", "",
			"open-loop load snapshot written by tklus-bench -load (empty skips the load gate)")
		minCollapseRatio = flag.Float64("min-collapse-ratio", 2.0,
			"fail unless the unprotected baseline's overload p99 is at least this multiple of the admission-controlled p99")
		minGoodputFrac = flag.Float64("min-goodput-frac", 0.5,
			"fail unless the admission-controlled arm's overload goodput is at least this fraction of measured capacity")
		replicationIn = flag.String("replication-in", "",
			"replication failover snapshot written by tklus-bench -replication (empty skips the replication gate)")
		maxFailoverX = flag.Float64("max-failover-x", 2.0,
			"fail when group re-election after a leader kill took longer than this multiple of the per-shard deadline")
	)
	flag.Parse()

	if *in == "" && *shardedIn == "" && *batchioIn == "" && *blockmaxIn == "" && *segmentsIn == "" && *tracingIn == "" && *loadIn == "" && *replicationIn == "" {
		log.Fatal("nothing to check: -in, -sharded-in, -batchio-in, -blockmax-in, -segments-in, -tracing-in, -load-in and -replication-in are all empty")
	}
	if *shardedIn != "" {
		checkSharded(*shardedIn)
	}
	if *batchioIn != "" {
		checkBatchIO(*batchioIn, *minBatchioSpeedup)
	}
	if *blockmaxIn != "" {
		checkBlockMax(*blockmaxIn, *minBlockmaxSpeedup)
	}
	if *segmentsIn != "" {
		checkSegments(*segmentsIn, *minSegmentsSpeedup)
	}
	if *tracingIn != "" {
		checkTracing(*tracingIn, *maxTracingOverhead, *tracingNoise)
	}
	if *loadIn != "" {
		checkLoad(*loadIn, *minCollapseRatio, *minGoodputFrac)
	}
	if *replicationIn != "" {
		checkReplication(*replicationIn, *maxFailoverX)
	}
	if *in == "" {
		return
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadParallelSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Classes) == 0 {
		log.Fatalf("%s holds no query classes — empty benchmark run?", *in)
	}

	fmt.Printf("workers=%d cache_cap=%d classes=%d\n",
		snap.Workers, snap.PopCacheCap, len(snap.Classes))
	for _, c := range snap.Classes {
		fmt.Printf("  %dkw r=%.0fkm %s/%s: seq p95 %.2fms, par p95 %.2fms (%.2fx, %d cache hits)\n",
			c.Keywords, c.RadiusKm, c.Semantic, c.Ranking,
			c.SeqP95Ms, c.ParP95Ms, c.SpeedupP95, c.CacheHits)
	}
	fmt.Printf("overall: seq p95 %.2fms, par p95 %.2fms, speedup %.2fx (required >= %.2fx)\n",
		snap.OverallSeqP95Ms, snap.OverallParP95Ms, snap.OverallSpeedupP95, *minSpeedup)

	if snap.OverallSpeedupP95 < *minSpeedup {
		log.Fatalf("REGRESSION: overall p95 speedup %.2fx below required %.2fx",
			snap.OverallSpeedupP95, *minSpeedup)
	}
	fmt.Println("ok")
}

// checkSharded gates the shard-scaling snapshot on the tier's correctness
// guarantees; latency may vary by machine, correctness may not.
func checkSharded(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadShardedSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Points) == 0 {
		log.Fatalf("%s holds no shard counts — empty benchmark run?", path)
	}
	if snap.Queries == 0 {
		log.Fatalf("%s replayed no queries", path)
	}

	fmt.Printf("sharded sweep: %d queries, prefix_len=%d, mono p95 %.2fms\n",
		snap.Queries, snap.PrefixLen, snap.MonoP95Ms)
	for _, p := range snap.Points {
		fmt.Printf("  %d shards: p50 %.2fms, p95 %.2fms (%.2fx, %d degraded)\n",
			p.Shards, p.P50Ms, p.P95Ms, p.SpeedupP95, p.Degraded)
	}

	if !snap.ResultsIdentical {
		log.Fatal("REGRESSION: sharded results diverged from the monolithic build")
	}
	for _, p := range snap.Points {
		if p.Degraded != 0 {
			log.Fatalf("REGRESSION: %d-shard tier reported %d degraded queries over healthy shards",
				p.Shards, p.Degraded)
		}
	}
	fmt.Println("sharded ok")
}

// checkBatchIO gates the batched-IO snapshot: results must be identical
// across all three IO configurations, and the CSR-snapshot configuration
// must beat the point-lookup baseline's p95 by the required factor on the
// large-radius OR workload.
func checkBatchIO(path string, minSpeedup float64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadBatchIOSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Classes) == 0 {
		log.Fatalf("%s holds no query classes — empty benchmark run?", path)
	}

	fmt.Printf("batchio: %d classes, iolat=%s\n", len(snap.Classes), snap.IOLatency)
	for _, c := range snap.Classes {
		fmt.Printf("  %dkw r=%.0fkm %s/%s: point p95 %.2fms, batch p95 %.2fms (%.2fx), snap p95 %.2fms (%.2fx), %d pages saved\n",
			c.Keywords, c.RadiusKm, c.Semantic, c.Ranking,
			c.PointP95Ms, c.BatchP95Ms, c.BatchSpeedupP95,
			c.SnapP95Ms, c.SnapSpeedupP95, c.PagesSaved)
	}
	fmt.Printf("overall: point p95 %.2fms, batch p95 %.2fms (%.2fx), snap p95 %.2fms (%.2fx, required >= %.2fx)\n",
		snap.OverallPointP95, snap.OverallBatchP95, snap.BatchSpeedupP95,
		snap.OverallSnapP95, snap.SnapSpeedupP95, minSpeedup)

	if !snap.ResultsIdentical {
		log.Fatal("REGRESSION: results diverged across IO configurations")
	}
	if snap.SnapSpeedupP95 < minSpeedup {
		log.Fatalf("REGRESSION: snapshot p95 speedup %.2fx below required %.2fx",
			snap.SnapSpeedupP95, minSpeedup)
	}
	fmt.Println("batchio ok")
}

// checkBlockMax gates the block-max traversal snapshot: results must be
// identical across the exhaustive, Def.-11-only and block-max
// configurations, the block-max traversal must have actually skipped
// postings blocks (proof the lazy intersection is live, not silently
// falling back to eager decoding), and its p95 on the sum-ranking classes
// must beat the exhaustive baseline by the required factor.
func checkBlockMax(path string, minSpeedup float64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadBlockMaxSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Classes) == 0 {
		log.Fatalf("%s holds no query classes — empty benchmark run?", path)
	}

	fmt.Printf("blockmax: %d classes, iolat=%s\n", len(snap.Classes), snap.IOLatency)
	for _, c := range snap.Classes {
		fmt.Printf("  %dkw r=%.0fkm %s/%s: exh p95 %.2fms, def11 p95 %.2fms (%.2fx), bmax p95 %.2fms (%.2fx), threads %d->%d, %d blocks skipped\n",
			c.Keywords, c.RadiusKm, c.Semantic, c.Ranking,
			c.ExhP95Ms, c.Def11P95Ms, c.Def11SpeedupP95,
			c.BMP95Ms, c.BMSpeedupP95, c.ThreadsBuiltExh, c.ThreadsBuiltBM, c.BlocksSkipped)
	}
	fmt.Printf("overall: exh p95 %.2fms, bmax p95 %.2fms (%.2fx), sum-ranking speedup %.2fx (required >= %.2fx), %d blocks (%d postings) skipped\n",
		snap.OverallExhP95, snap.OverallBMP95, snap.BMSpeedupP95,
		snap.SumSpeedupP95, minSpeedup, snap.TotalBlocksSkipped, snap.TotalPostingsSkipped)

	if !snap.ResultsIdentical {
		log.Fatal("REGRESSION: results diverged across traversal configurations")
	}
	if snap.TotalBlocksSkipped == 0 {
		log.Fatal("REGRESSION: block-max traversal skipped no blocks — lazy intersection not engaged")
	}
	if snap.SumSpeedupP95 < minSpeedup {
		log.Fatalf("REGRESSION: sum-ranking p95 speedup %.2fx below required %.2fx",
			snap.SumSpeedupP95, minSpeedup)
	}
	fmt.Println("blockmax ok")
}

// checkSegments gates the storage-engine snapshot: results must be
// identical between the paged baseline and the segment store, the store
// must actually be time-partitioned (more than one sealed segment, with
// windowed queries pruning whole partitions — proof the bucket predicate
// is live), and the segment store's cold-read p95 must beat the paged
// baseline by the required factor.
func checkSegments(path string, minSpeedup float64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadSegmentsSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Classes) == 0 {
		log.Fatalf("%s holds no query classes — empty benchmark run?", path)
	}

	fmt.Printf("segments: %d classes, %d segments, iolat=%s, %.1f MiB mapped\n",
		len(snap.Classes), snap.Segments, snap.IOLatency, float64(snap.MmapBytes)/(1<<20))
	for _, c := range snap.Classes {
		fmt.Printf("  %dkw r=%.0fkm %s/%s windowed=%v: paged p95 %.2fms, segments p95 %.2fms (%.2fx), %d partitions pruned\n",
			c.Keywords, c.RadiusKm, c.Semantic, c.Ranking, c.Windowed,
			c.PagedP95, c.SegP95, c.SpeedupP95, c.PartitionsPruned)
	}
	fmt.Printf("overall: paged p95 %.2fms, segments p95 %.2fms, cold speedup %.2fx (required >= %.2fx), %d partitions pruned\n",
		snap.OverallPagedP95, snap.OverallSegP95, snap.ColdSpeedupP95, minSpeedup, snap.TotalPartitionsPruned)

	if !snap.ResultsIdentical {
		log.Fatal("REGRESSION: results diverged between the paged baseline and the segment store")
	}
	if snap.Segments < 2 {
		log.Fatalf("REGRESSION: store holds %d segments — time partitioning not engaged", snap.Segments)
	}
	if snap.TotalPartitionsPruned == 0 {
		log.Fatal("REGRESSION: windowed queries pruned no partitions — bucket predicate not engaged")
	}
	if snap.ColdSpeedupP95 < minSpeedup {
		log.Fatalf("REGRESSION: cold-read p95 speedup %.2fx below required %.2fx",
			snap.ColdSpeedupP95, minSpeedup)
	}
	fmt.Println("segments ok")
}

// checkTracing gates the tracing-overhead snapshot: the disabled-tracer
// pass must sit within the noise band of the no-tracer baseline (the
// zero-cost-when-off contract, measured end to end), the enabled-tracer
// pass must stay under the overhead budget, and the traced pass must
// return identical results while actually retaining its traces.
func checkTracing(path string, maxOverhead, noise float64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadTracingSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if snap.Queries == 0 || snap.Rounds == 0 {
		log.Fatalf("%s replayed no queries — empty benchmark run?", path)
	}

	fmt.Printf("tracing: %d shards, %d queries x %d rounds\n",
		snap.Shards, snap.Queries, snap.Rounds)
	fmt.Printf("  no tracer:  p50 %.2fms, p95 %.2fms\n", snap.BaselineP50Ms, snap.BaselineP95Ms)
	fmt.Printf("  tracer off: p50 %.2fms, p95 %.2fms (%+.1f%%, noise band ±%.1f%%)\n",
		snap.OffP50Ms, snap.OffP95Ms, snap.OffOverheadPct, noise)
	fmt.Printf("  tracer on:  p50 %.2fms, p95 %.2fms (%+.1f%%, budget %.1f%%), %d traces kept, %.1f spans/trace\n",
		snap.OnP50Ms, snap.OnP95Ms, snap.OnOverheadPct, maxOverhead,
		snap.TracesKept, snap.SpansPerTrace)

	if !snap.ResultsIdentical {
		log.Fatal("REGRESSION: traced pass diverged from the untraced baseline")
	}
	if snap.TracesKept == 0 {
		log.Fatal("REGRESSION: SampleRate-1 tracer retained no traces")
	}
	if snap.OffOverheadPct > noise || snap.OffOverheadPct < -noise {
		log.Fatalf("REGRESSION: disabled-tracer p95 drifted %+.1f%% from baseline (noise band ±%.1f%%)",
			snap.OffOverheadPct, noise)
	}
	if snap.OnOverheadPct > maxOverhead {
		log.Fatalf("REGRESSION: enabled-tracer p95 overhead %+.1f%% exceeds budget %.1f%%",
			snap.OnOverheadPct, maxOverhead)
	}
	fmt.Println("tracing ok")
}

// checkReplication gates the replication snapshot on the availability
// contract: results byte-identical to the monolithic oracle with every
// replica healthy AND after every shard's leader is killed (the
// post-failover identity guarantee), no degraded queries in either arm,
// and the lease protocol re-electing every group within a small multiple
// of the per-shard deadline — a failover slower than the router's own
// timeout budget would be indistinguishable from an outage.
func checkReplication(path string, maxFailoverX float64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadReplicationSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if snap.Queries == 0 {
		log.Fatalf("%s replayed no queries — empty benchmark run?", path)
	}

	fmt.Printf("replication: %d shards x %d replicas, %d queries, lease TTL %.0fms, shard deadline %.0fms\n",
		snap.Shards, snap.Replicas, snap.Queries, snap.LeaseTTLMs, snap.ShardTimeoutMs)
	fmt.Printf("  healthy:        p50 %.2fms, p95 %.2fms (%d degraded)\n",
		snap.HealthyP50Ms, snap.HealthyP95Ms, snap.HealthyDegraded)
	fmt.Printf("  leaders killed: p50 %.2fms, p95 %.2fms (%d degraded)\n",
		snap.LostP50Ms, snap.LostP95Ms, snap.LostDegraded)
	fmt.Printf("  failover: %d leadership changes in %.0fms (budget %.0fms = %.1fx shard deadline)\n",
		snap.Failovers, snap.FailoverMs, maxFailoverX*snap.ShardTimeoutMs, maxFailoverX)

	if !snap.ResultsIdentical {
		log.Fatal("REGRESSION: replicated results diverged from the monolithic oracle")
	}
	if snap.HealthyDegraded != 0 || snap.LostDegraded != 0 {
		log.Fatalf("REGRESSION: replicated tier reported degraded queries (healthy %d, post-failover %d)",
			snap.HealthyDegraded, snap.LostDegraded)
	}
	if snap.Failovers < int64(snap.Shards) {
		log.Fatalf("REGRESSION: only %d leadership changes across %d shards — leader kill did not exercise failover",
			snap.Failovers, snap.Shards)
	}
	if snap.ShardTimeoutMs <= 0 {
		log.Fatal("REGRESSION: snapshot carries no per-shard deadline — the failover budget is undefined")
	}
	if snap.FailoverMs >= maxFailoverX*snap.ShardTimeoutMs {
		log.Fatalf("REGRESSION: failover took %.0fms, budget %.0fms (%.1fx the %.0fms shard deadline)",
			snap.FailoverMs, maxFailoverX*snap.ShardTimeoutMs, maxFailoverX, snap.ShardTimeoutMs)
	}
	fmt.Println("replication ok")
}

// checkLoad gates the open-loop load snapshot on the overload contract:
// the sweep must cover at least three offered rates with the top one at
// ≥2× measured capacity; at that top rate the admission-controlled arm
// must have shed traffic, kept goodput at a healthy fraction of
// capacity, and held p99 low enough that the unprotected baseline's p99
// is at least minCollapseRatio times worse — the queueing collapse the
// admission controller exists to prevent.
func checkLoad(path string, minCollapseRatio, minGoodputFrac float64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadLoadSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Baseline) == 0 || len(snap.Admitted) == 0 {
		log.Fatalf("%s holds no rate points — empty load run?", path)
	}

	fmt.Printf("load: capacity %.0f qps (%d workers), %d rate points, run %.1fs\n",
		snap.CapacityQPS, snap.Workers, len(snap.Baseline), snap.RunSeconds)
	printArm := func(arm string, pts []experiments.LoadPoint) {
		for _, p := range pts {
			fmt.Printf("  %-8s %.1fx (%.0f qps): sent %d, ok %d, shed %d, goodput %.0f qps, p50 %.1fms, p99 %.1fms\n",
				arm, p.Multiple, p.OfferedQPS, p.Sent, p.OK, p.Shed, p.GoodputQPS, p.P50Ms, p.P99Ms)
		}
	}
	printArm("baseline", snap.Baseline)
	printArm("admitted", snap.Admitted)
	fmt.Printf("overload %.1fx: baseline p99 %.1fms vs admitted p99 %.1fms (%.1fx, required >= %.1fx), shed %.0f%%, goodput %.0f qps\n",
		snap.OverloadMultiple, snap.BaselineP99Ms, snap.AdmittedP99Ms,
		snap.CollapseP99Ratio, minCollapseRatio,
		snap.AdmittedShedRate*100, snap.AdmittedGoodputQPS)

	if len(snap.Baseline) < 3 || len(snap.Admitted) < 3 {
		log.Fatalf("REGRESSION: load sweep covered %d rate points, need >= 3",
			len(snap.Baseline))
	}
	if snap.OverloadMultiple < 2 {
		log.Fatalf("REGRESSION: top offered rate is %.1fx capacity, need >= 2x to demonstrate overload",
			snap.OverloadMultiple)
	}
	if snap.AdmittedShedRate <= 0 {
		log.Fatal("REGRESSION: admission control shed nothing at 2x overload — admission path not engaged")
	}
	if snap.CollapseP99Ratio < minCollapseRatio {
		log.Fatalf("REGRESSION: baseline overload p99 only %.1fx the admitted p99 (required >= %.1fx) — either the baseline did not collapse or admission control stopped bounding latency",
			snap.CollapseP99Ratio, minCollapseRatio)
	}
	if snap.AdmittedGoodputQPS < minGoodputFrac*snap.CapacityQPS {
		log.Fatalf("REGRESSION: admitted overload goodput %.0f qps below %.0f%% of capacity %.0f qps — shedding too aggressively",
			snap.AdmittedGoodputQPS, minGoodputFrac*100, snap.CapacityQPS)
	}
	fmt.Println("load ok")
}
