// Command tklus-benchcheck gates the parallel-pipeline benchmark: it reads
// the BENCH_parallel.json snapshot written by tklus-bench and exits
// non-zero when the parallel configuration's overall p95 latency fails to
// beat the sequential baseline by the required factor. Wire it after
// tklus-bench in CI (the Makefile's bench-compare lane) so a change that
// silently serializes the pipeline or breaks the popularity cache fails
// the build instead of shipping.
//
// Usage:
//
//	tklus-benchcheck -in BENCH_parallel.json -min-p95-speedup 1.0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-benchcheck: ")

	var (
		in = flag.String("in", "BENCH_parallel.json",
			"parallel comparison snapshot written by tklus-bench")
		minSpeedup = flag.Float64("min-p95-speedup", 1.0,
			"fail unless overall p95 speedup (sequential/parallel) is at least this")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := experiments.ReadParallelSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Classes) == 0 {
		log.Fatalf("%s holds no query classes — empty benchmark run?", *in)
	}

	fmt.Printf("workers=%d cache_cap=%d classes=%d\n",
		snap.Workers, snap.PopCacheCap, len(snap.Classes))
	for _, c := range snap.Classes {
		fmt.Printf("  %dkw r=%.0fkm %s/%s: seq p95 %.2fms, par p95 %.2fms (%.2fx, %d cache hits)\n",
			c.Keywords, c.RadiusKm, c.Semantic, c.Ranking,
			c.SeqP95Ms, c.ParP95Ms, c.SpeedupP95, c.CacheHits)
	}
	fmt.Printf("overall: seq p95 %.2fms, par p95 %.2fms, speedup %.2fx (required >= %.2fx)\n",
		snap.OverallSeqP95Ms, snap.OverallParP95Ms, snap.OverallSpeedupP95, *minSpeedup)

	if snap.OverallSpeedupP95 < *minSpeedup {
		log.Fatalf("REGRESSION: overall p95 speedup %.2fx below required %.2fx",
			snap.OverallSpeedupP95, *minSpeedup)
	}
	fmt.Println("ok")
}
