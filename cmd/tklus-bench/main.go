// Command tklus-bench regenerates the paper's evaluation: every figure of
// Section VI plus Table IV and the design-choice ablations, printed as
// aligned tables whose rows mirror the paper's plotted series. Absolute
// times differ from the paper's Hadoop cluster, the shapes are what count
// (see EXPERIMENTS.md).
//
// Usage:
//
//	tklus-bench                 # run everything at the default scale
//	tklus-bench -fig 8          # a single figure
//	tklus-bench -posts 10000 -queries 10   # smaller, faster run
//
// Every run also writes BENCH_telemetry.json (disable with -telemetry ""):
// per-stage query-pipeline latency percentiles from the telemetry
// histograms, the machine-readable perf baseline later PRs compare
// against.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-bench: ")

	var (
		fig     = flag.String("fig", "all", "experiment id (5..13, table4, ablation-*, all)")
		posts   = flag.Int("posts", 40000, "corpus size")
		users   = flag.Int("users", 3000, "user count")
		queries = flag.Int("queries", 30, "queries per keyword-count class")
		seed    = flag.Int64("seed", 42, "random seed")
		k       = flag.Int("k", 10, "result size k")
		iolat   = flag.Duration("iolat", 2*time.Microsecond,
			"simulated latency per metadata page read (paper regime: disk-based, caches off)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		telemetry = flag.String("telemetry", "BENCH_telemetry.json",
			"write a per-stage latency snapshot to this file (empty disables)")
		popcache = flag.Int("popcache", 4096,
			"thread-popularity cache capacity for the parallel comparison (entries)")
		parallel = flag.String("parallel", "BENCH_parallel.json",
			"write the sequential-vs-parallel comparison to this file (empty disables)")
		sharded = flag.String("sharded", "",
			"write the sharded scatter-gather scaling run to this file (empty disables; the bench-sharded lane passes BENCH_sharded.json)")
		batchio = flag.String("batchio", "",
			"write the point-vs-batched-vs-snapshot IO comparison to this file (empty disables; the bench-batchio lane passes BENCH_batchio.json)")
		tracing = flag.String("tracing", "",
			"write the tracing-overhead comparison to this file (empty disables; the bench-tracing lane passes BENCH_tracing.json)")
		blockmax = flag.String("blockmax", "",
			"write the block-max traversal comparison to this file (empty disables; the bench-blockmax lane passes BENCH_blockmax.json)")
		segments = flag.String("segments", "",
			"write the paged-vs-segments storage comparison to this file (empty disables; the bench-segments lane passes BENCH_segments.json)")
		load = flag.String("load", "",
			"write the open-loop load comparison to this file (empty disables; the bench-load lane passes BENCH_load.json)")
		loadDur = flag.Duration("load-duration", 1500*time.Millisecond,
			"how long each open-loop load run offers arrivals")
		replication = flag.String("replication", "",
			"write the replication failover comparison to this file (empty disables; the bench-replication lane passes BENCH_replication.json)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("  %-18s %s\n", r.ID, r.Name)
		}
		return
	}

	cfg := experiments.Config{
		Seed: *seed, NumUsers: *users, NumPosts: *posts,
		QueryPerClass: *queries, K: *k, IOLatency: *iolat,
		PopCacheSize: *popcache, LoadDuration: *loadDur,
	}
	fmt.Fprintf(os.Stderr, "generating corpus (%d posts, %d users, seed %d)...\n",
		cfg.NumPosts, cfg.NumUsers, cfg.Seed)
	start := time.Now()
	setup, err := experiments.NewSetup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "corpus ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	ran := 0
	for _, r := range experiments.Runners() {
		if *fig != "all" && *fig != r.ID {
			continue
		}
		t0 := time.Now()
		table, err := r.Run(setup)
		if err != nil {
			log.Fatalf("%s: %v", r.ID, err)
		}
		table.Fprint(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q (use -list)", *fig)
	}

	if *parallel != "" {
		t0 := time.Now()
		snap, err := setup.ParallelCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("parallel comparison: %v", err)
		}
		f, err := os.Create(*parallel)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[parallel comparison (p95 speedup %.2fx) written to %s in %v]\n",
			snap.OverallSpeedupP95, *parallel, time.Since(t0).Round(time.Millisecond))
	}

	if *sharded != "" {
		t0 := time.Now()
		snap, err := setup.ShardedCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("sharded comparison: %v", err)
		}
		f, err := os.Create(*sharded)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[sharded scaling run (%d tiers, identical=%v) written to %s in %v]\n",
			len(snap.Points), snap.ResultsIdentical, *sharded, time.Since(t0).Round(time.Millisecond))
	}

	if *batchio != "" {
		t0 := time.Now()
		snap, err := setup.BatchIOCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("batchio comparison: %v", err)
		}
		f, err := os.Create(*batchio)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[batchio comparison (snapshot p95 speedup %.2fx, identical=%v) written to %s in %v]\n",
			snap.SnapSpeedupP95, snap.ResultsIdentical, *batchio, time.Since(t0).Round(time.Millisecond))
	}

	if *tracing != "" {
		t0 := time.Now()
		snap, err := setup.TracingCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("tracing comparison: %v", err)
		}
		f, err := os.Create(*tracing)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[tracing comparison (on overhead %+.1f%%, identical=%v) written to %s in %v]\n",
			snap.OnOverheadPct, snap.ResultsIdentical, *tracing, time.Since(t0).Round(time.Millisecond))
	}

	if *blockmax != "" {
		t0 := time.Now()
		snap, err := setup.BlockMaxCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("blockmax comparison: %v", err)
		}
		f, err := os.Create(*blockmax)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[blockmax comparison (sum p95 speedup %.2fx, %d blocks skipped, identical=%v) written to %s in %v]\n",
			snap.SumSpeedupP95, snap.TotalBlocksSkipped, snap.ResultsIdentical, *blockmax, time.Since(t0).Round(time.Millisecond))
	}

	if *segments != "" {
		t0 := time.Now()
		snap, err := setup.SegmentsCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("segments comparison: %v", err)
		}
		f, err := os.Create(*segments)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[segments comparison (cold p95 speedup %.2fx, %d segments, %d partitions pruned, identical=%v) written to %s in %v]\n",
			snap.ColdSpeedupP95, snap.Segments, snap.TotalPartitionsPruned, snap.ResultsIdentical, *segments, time.Since(t0).Round(time.Millisecond))
	}

	if *load != "" {
		t0 := time.Now()
		snap, err := setup.LoadCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("load comparison: %v", err)
		}
		f, err := os.Create(*load)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[load comparison (capacity %.0f qps, collapse p99 ratio %.1fx, shed %.0f%%) written to %s in %v]\n",
			snap.CapacityQPS, snap.CollapseP99Ratio, snap.AdmittedShedRate*100,
			*load, time.Since(t0).Round(time.Millisecond))
	}

	if *replication != "" {
		t0 := time.Now()
		snap, err := setup.ReplicationCompare() // memoized if the runner already ran
		if err != nil {
			log.Fatalf("replication comparison: %v", err)
		}
		f, err := os.Create(*replication)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[replication comparison (failover %.0fms, %d failovers, identical=%v) written to %s in %v]\n",
			snap.FailoverMs, snap.Failovers, snap.ResultsIdentical,
			*replication, time.Since(t0).Round(time.Millisecond))
	}

	if *telemetry != "" {
		t0 := time.Now()
		snap, err := setup.Telemetry()
		if err != nil {
			log.Fatalf("telemetry snapshot: %v", err)
		}
		f, err := os.Create(*telemetry)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[telemetry snapshot (%d queries) written to %s in %v]\n",
			snap.Queries, *telemetry, time.Since(t0).Round(time.Millisecond))
	}
}
