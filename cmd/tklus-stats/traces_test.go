package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// buildTrace records a realistic scatter-gather trace — root, router,
// a clean attempt with folded stages, a failed attempt, and its hedge
// backup — and returns it as the store retained it.
func buildTrace(t *testing.T) *telemetry.Trace {
	t.Helper()
	tracer := telemetry.NewTracer(telemetry.TracerOptions{SampleRate: 1})
	root := tracer.StartTrace("server/v1/search")
	router := root.StartChild("router")

	a0 := router.StartChild("shard.attempt")
	a0.SetShard("shard-00")
	a0.Fold("stage.cell_cover", time.Now(), 2*time.Millisecond)
	a0.Fold("stage.rank_topk", time.Now(), 3*time.Millisecond)
	a0.Finish()

	a1 := router.StartChild("shard.attempt")
	a1.SetShard("shard-01")
	a1.SetError(errors.New("connection refused"))
	a1.Finish()

	router.Event(telemetry.EventHedge, "shard-01")
	a2 := router.StartChild("shard.attempt")
	a2.SetShard("shard-01")
	a2.SetAttr("hedge", "backup")
	a2.Finish()

	router.Finish()
	root.Finish()

	traces := tracer.Store().Recent(telemetry.TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("store retained %d traces, want 1", len(traces))
	}
	return traces[0]
}

func TestSummarizeTraces(t *testing.T) {
	tr := buildTrace(t)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := summarizeTraces(path, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace " + tr.TraceID,
		"server/v1/search",
		"router",
		"shard.attempt (shard-00)",
		"shard.attempt (shard-01)",
		"[hedge]",
		"ERROR: connection refused",
		"hedge_launched: shard-01",
		"stage.cell_cover",
		"shard critical path:",
		"2 attempt(s), 1 failed, 1 hedged",
		"<- critical",
		"per-stage exclusive time",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestSummarizeTracesArray(t *testing.T) {
	tr := buildTrace(t)
	raw, err := json.Marshal([]*telemetry.Trace{tr, tr})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := summarizeTraces(path, &buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "trace "+tr.TraceID); n != 2 {
		t.Errorf("array input printed %d trace headers, want 2", n)
	}
}

func TestSummarizeTracesRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarizeTraces(path, &bytes.Buffer{}); err == nil {
		t.Error("garbage input did not error")
	}
}
