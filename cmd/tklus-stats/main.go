// Command tklus-stats prints the corpus statistics behind the paper's
// data-set description and Table II: volume, time span, reaction
// structure (thread fanout and popularity), keyword frequencies, and the
// densest geohash cells.
//
// With -traces it instead summarizes trace JSON saved from a server's
// /debug/traces/{id} endpoint (a single trace object or an array of
// them): per-stage exclusive-time totals and the per-shard critical-path
// breakdown of each scatter-gather query.
//
// Usage:
//
//	tklus-stats -in corpus.jsonl
//	tklus-stats -in statuses.json -format twitter
//	curl -s host:8080/debug/traces/$ID > t.json && tklus-stats -traces t.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/social"
	"repro/internal/thread"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-stats: ")

	var (
		in      = flag.String("in", "corpus.jsonl", "input corpus")
		format  = flag.String("format", "jsonl", "input format: jsonl | twitter")
		geohash = flag.Int("geohash", 4, "geohash length for the density report")
		topN    = flag.Int("top", 10, "rows per ranking table")
		traces  = flag.String("traces", "",
			"summarize trace JSON from /debug/traces/{id} instead of a corpus (single object or array)")
	)
	flag.Parse()

	if *traces != "" {
		if err := summarizeTraces(*traces, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	posts, err := ingest.Load(*in, *format)
	if err != nil {
		log.Fatal(err)
	}

	users := map[social.UserID]int{}
	words := map[string]int{}
	cells := map[string]int{}
	children := map[social.PostID]int{}
	reactions := 0
	minSID, maxSID := posts[0].SID, posts[0].SID
	for _, p := range posts {
		users[p.UID]++
		for _, w := range p.Words {
			words[w]++
		}
		cells[geo.Encode(p.Loc, *geohash)]++
		if p.IsReaction() {
			reactions++
			children[p.RSID]++
		}
		if p.SID < minSID {
			minSID = p.SID
		}
		if p.SID > maxSID {
			maxSID = p.SID
		}
	}
	maxFanout := 0
	for _, n := range children {
		if n > maxFanout {
			maxFanout = n
		}
	}
	bounds := thread.ComputeBounds(posts, 6, 0.1, nil)

	fmt.Printf("corpus:          %d posts by %d users\n", len(posts), len(users))
	fmt.Printf("time span:       %s .. %s\n",
		time.Unix(0, int64(minSID)).UTC().Format("2006-01-02"),
		time.Unix(0, int64(maxSID)).UTC().Format("2006-01-02"))
	fmt.Printf("reactions:       %d (%.1f%%), %d threads with replies\n",
		reactions, 100*float64(reactions)/float64(len(posts)), len(children))
	fmt.Printf("max fanout t_m:  %d (Definition 11)\n", maxFanout)
	fmt.Printf("max thread pop:  %.3f (largest Definition 4 score, depth 6)\n\n", bounds.MaxObserved)

	fmt.Printf("top %d keywords (Table II view):\n", *topN)
	printRanking(words, *topN)

	fmt.Printf("\ntop %d geohash-%d cells by post count:\n", *topN, *geohash)
	printRanking(cells, *topN)
}

func printRanking(counts map[string]int, n int) {
	type kv struct {
		k string
		n int
	}
	ranked := make([]kv, 0, len(counts))
	for k, c := range counts {
		ranked = append(ranked, kv{k, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].k < ranked[j].k
	})
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	for i, r := range ranked {
		fmt.Printf("  %2d. %-14s %d\n", i+1, r.k, r.n)
	}
}
