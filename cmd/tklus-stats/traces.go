package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// summarizeTraces reads trace JSON saved from /debug/traces/{id} — one
// telemetry.Trace object or an array of them — and prints, per trace,
// the span tree and the per-shard critical path, then the per-stage
// exclusive-time totals across every trace in the file.
func summarizeTraces(path string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	traces, err := decodeTraces(raw)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(traces) == 0 {
		return fmt.Errorf("%s holds no traces", path)
	}

	excl := map[string]*stageAgg{}
	var rootTotal int64
	for i, t := range traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		printTrace(w, t)
		rootTotal += t.DurationUs
		accumulateExclusive(t, excl)
	}

	fmt.Fprintln(w)
	printStageTotals(w, excl, rootTotal)
	return nil
}

// decodeTraces accepts a single Trace object or a JSON array of them.
func decodeTraces(raw []byte) ([]*telemetry.Trace, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var ts []*telemetry.Trace
		if err := json.Unmarshal(trimmed, &ts); err != nil {
			return nil, err
		}
		return ts, nil
	}
	var t telemetry.Trace
	if err := json.Unmarshal(trimmed, &t); err != nil {
		return nil, err
	}
	return []*telemetry.Trace{&t}, nil
}

// printTrace renders one trace: header, indented span tree, and the
// per-shard critical-path table.
func printTrace(w io.Writer, t *telemetry.Trace) {
	flags := make([]string, 0, 4)
	if t.Hedged {
		flags = append(flags, "hedged")
	}
	if t.Degraded {
		flags = append(flags, "degraded")
	}
	if t.Errored {
		flags = append(flags, "errored")
	}
	if t.Remote {
		flags = append(flags, "remote")
	}
	suffix := ""
	if len(flags) > 0 {
		suffix = " [" + strings.Join(flags, ",") + "]"
	}
	fmt.Fprintf(w, "trace %s  %s  %s  %s%s\n",
		t.TraceID, t.Root, usDur(t.DurationUs), t.Outcome, suffix)

	children := map[string][]int{}
	var roots []int
	for i, sp := range t.Spans {
		if sp.ParentID == "" {
			roots = append(roots, i)
		} else {
			children[sp.ParentID] = append(children[sp.ParentID], i)
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := t.Spans[i]
		label := sp.Name
		if sp.Shard != "" {
			label += " (" + sp.Shard + ")"
		}
		if sp.Attrs["hedge"] == "backup" {
			label += " [hedge]"
		}
		note := ""
		if sp.Unfinished {
			note = "  UNFINISHED"
		} else if sp.Error != "" {
			note = "  ERROR: " + sp.Error
		}
		fmt.Fprintf(w, "  %s%-*s +%s %s%s\n",
			strings.Repeat("  ", depth), 40-2*depth, label,
			usDur(sp.StartUs), usDur(sp.DurationUs), note)
		for _, e := range sp.Events {
			msg := e.Name
			if e.Msg != "" {
				msg += ": " + e.Msg
			}
			fmt.Fprintf(w, "  %s! %s (+%s)\n",
				strings.Repeat("  ", depth+1), msg, usDur(e.OffsetUs))
		}
		for _, c := range children[sp.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}

	printShardCriticalPath(w, t)
}

// shardAgg accumulates the attempt spans of one shard within a trace.
type shardAgg struct {
	name     string
	attempts int
	errors   int
	hedges   int
	winUs    int64 // fastest successful attempt; -1 when none succeeded
}

// printShardCriticalPath summarizes the scatter-gather barrier: per
// shard, how many attempts ran, how many failed or were hedge backups,
// and the winning attempt's latency. The slowest winning shard is the
// gather critical path — the shard that set the query's floor.
func printShardCriticalPath(w io.Writer, t *telemetry.Trace) {
	byShard := map[string]*shardAgg{}
	for _, sp := range t.Spans {
		if sp.Name != "shard.attempt" || sp.Shard == "" {
			continue
		}
		a := byShard[sp.Shard]
		if a == nil {
			a = &shardAgg{name: sp.Shard, winUs: -1}
			byShard[sp.Shard] = a
		}
		a.attempts++
		if sp.Attrs["hedge"] == "backup" {
			a.hedges++
		}
		switch {
		case sp.Error != "" || sp.Unfinished:
			a.errors++
		case a.winUs < 0 || sp.DurationUs < a.winUs:
			a.winUs = sp.DurationUs
		}
	}
	if len(byShard) == 0 {
		return
	}
	shards := make([]*shardAgg, 0, len(byShard))
	critical := ""
	var worst int64 = -1
	for _, a := range byShard {
		shards = append(shards, a)
		if a.winUs > worst {
			worst, critical = a.winUs, a.name
		}
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].name < shards[j].name })

	fmt.Fprintf(w, "  shard critical path:\n")
	for _, a := range shards {
		win := "lost"
		if a.winUs >= 0 {
			win = usDur(a.winUs)
		}
		mark := ""
		if a.name == critical && a.winUs >= 0 {
			mark = "  <- critical"
		}
		fmt.Fprintf(w, "    %-12s %d attempt(s), %d failed, %d hedged, win %s%s\n",
			a.name, a.attempts, a.errors, a.hedges, win, mark)
	}
}

// stageAgg accumulates exclusive time for one span name across traces.
type stageAgg struct {
	name  string
	count int
	usSum int64
}

// accumulateExclusive charges each span its exclusive time — duration
// minus the time covered by its children — so a stage's row reflects the
// work done in that stage itself, not everything beneath it.
func accumulateExclusive(t *telemetry.Trace, agg map[string]*stageAgg) {
	childUs := map[string]int64{}
	for _, sp := range t.Spans {
		if sp.ParentID != "" {
			childUs[sp.ParentID] += sp.DurationUs
		}
	}
	for _, sp := range t.Spans {
		excl := sp.DurationUs - childUs[sp.SpanID]
		if excl < 0 {
			excl = 0 // concurrent children (hedges) can exceed the parent
		}
		a := agg[sp.Name]
		if a == nil {
			a = &stageAgg{name: sp.Name}
			agg[sp.Name] = a
		}
		a.count++
		a.usSum += excl
	}
}

// printStageTotals renders the cross-trace per-stage table, largest
// exclusive total first, as a share of summed root durations.
func printStageTotals(w io.Writer, agg map[string]*stageAgg, rootTotalUs int64) {
	stages := make([]*stageAgg, 0, len(agg))
	for _, a := range agg {
		stages = append(stages, a)
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].usSum != stages[j].usSum {
			return stages[i].usSum > stages[j].usSum
		}
		return stages[i].name < stages[j].name
	})

	fmt.Fprintf(w, "per-stage exclusive time (all traces):\n")
	for _, a := range stages {
		pct := 0.0
		if rootTotalUs > 0 {
			pct = 100 * float64(a.usSum) / float64(rootTotalUs)
		}
		fmt.Fprintf(w, "  %-28s %4dx  %10s  %5.1f%%\n",
			a.name, a.count, usDur(a.usSum), pct)
	}
}

// usDur renders a microsecond count as a rounded duration.
func usDur(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.String()
}
