// Command tklus-server serves TkLUS queries over HTTP. It either builds
// the system from a JSONL corpus or loads an image saved by
// tklus-index -save.
//
// Usage:
//
//	tklus-server -in corpus.jsonl -addr :8080
//	tklus-server -load ./sysimg  -addr :8080 -debug -slow-query 250ms
//	tklus-server -in corpus.jsonl -shards 4    # in-process sharded tier
//
//	curl 'localhost:8080/search?lat=43.68&lon=-79.37&radius=10&keywords=hotel&k=5'
//	curl -d '{"lat":43.68,"lon":-79.37,"radius_km":10,"keywords":["hotel"],"k":5}' localhost:8080/v1/search
//	curl 'localhost:8080/evidence?lat=43.68&lon=-79.37&radius=10&keywords=hotel&uid=1'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'          # Prometheus text exposition
//	go tool pprof localhost:8080/debug/pprof/profile   # with -debug
//
// The server installs Read/Write/Idle timeouts and shuts down gracefully
// on SIGINT/SIGTERM: in-flight queries drain (up to -shutdown-timeout),
// then a final metrics snapshot is flushed to the log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	tklus "repro"
	"repro/internal/ingest"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		in     = flag.String("in", "corpus.jsonl", "input corpus")
		format = flag.String("format", "jsonl", "input format: jsonl | twitter (REST v1.1 statuses)")
		load   = flag.String("load", "", "load a saved system image instead of rebuilding")
		addr   = flag.String("addr", ":8080", "listen address")
		debug  = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		slowQ  = flag.Duration("slow-query", 250*time.Millisecond,
			"log queries at or above this duration (0 disables the slow-query log)")
		popCache = flag.Int("popcache", 4096,
			"thread-popularity cache capacity in entries (0 disables the cache)")
		replySnap = flag.Bool("reply-snapshot", false,
			"serve thread expansion from the CSR reply-graph snapshot")
		rowMetaSnap = flag.Bool("rowmeta-snapshot", false,
			"serve the candidate radius filter from the row-meta snapshot")
		shards = flag.Int("shards", 0,
			"serve an in-process sharded tier with this many geo-shards (0 = monolithic; incompatible with -load)")
		replicas = flag.Int("replicas", 1,
			"replicas per shard when -shards > 0: one leader plus N-1 WAL-shipped followers with lease-based failover (1 = unreplicated)")
		replicaDir = flag.String("replica-dir", "",
			"directory for per-replica ingest WALs when -replicas > 1 (empty = ephemeral temp dir)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second,
			"how long to drain in-flight queries on SIGINT/SIGTERM")
		data = flag.String("data", "",
			"durable data directory: load the committed snapshot (or build from -in on first boot), replay and append the ingest WAL, checkpoint periodically and on shutdown (monolithic only)")
		walSync = flag.String("wal-sync", "record",
			"ingest WAL fsync policy: record | interval | off")
		checkpointInterval = flag.Duration("checkpoint-interval", 15*time.Minute,
			"how often to commit a fresh snapshot of the -data directory (0 disables periodic checkpoints)")
		segments = flag.Bool("segments", false,
			"serve reads from mmap'd immutable time-bucketed segments with an in-memory memtable for live ingest (monolithic only; persistent under -data, ephemeral otherwise)")
		segmentBucket = flag.Duration("segment-bucket", 30*24*time.Hour,
			"segment time-bucket width; ingest seals the memtable when a post crosses a bucket boundary")
		compactInterval = flag.Duration("compact-interval", 0,
			"background size-tiered segment compaction period (0 disables; requires -segments)")
		trace = flag.Bool("trace", false,
			"enable distributed tracing: span trees for searches, shard fan-outs, ingests and checkpoints, served at /debug/traces")
		traceSample = flag.Float64("trace-sample", 0.05,
			"probability an unremarkable trace survives tail sampling (slow, errored, hedged and degraded traces are always kept)")
		traceStore = flag.Int("trace-store", 512,
			"completed-trace ring buffer capacity")
		admission = flag.Bool("admission", false,
			"enable admission control: bounded queue + bounded wait; excess load answers 429 with Retry-After instead of queueing without bound")
		admissionConc = flag.Int("admission-concurrent", 0,
			"admission: max concurrently running searches (0 = GOMAXPROCS)")
		admissionQueue = flag.Int("admission-queue", 0,
			"admission: max searches waiting for a slot before arrivals are shed (0 = 4x -admission-concurrent)")
		admissionWait = flag.Duration("admission-wait", 0,
			"admission: max time one search may wait for a slot (0 = 500ms)")
		admissionCost = flag.Float64("admission-cost-budget", 0,
			"admission: token-bucket refill rate in estimated work units/sec; expensive query shapes are shed when the bucket runs dry (0 disables cost-based shedding)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// The feature flags map 1:1 onto Config.Features: Build, Load and every
	// shard of a sharded tier come up with the same serving surface.
	var featOpts []tklus.Option
	if *popCache > 0 {
		featOpts = append(featOpts, tklus.WithPopCache(*popCache))
	}
	if *replySnap {
		featOpts = append(featOpts, tklus.WithReplySnapshot())
	}
	if *rowMetaSnap {
		featOpts = append(featOpts, tklus.WithRowMetaSnapshot())
	}
	sysConfig := func() tklus.Config { return tklus.DefaultConfig(featOpts...) }

	var tracer *telemetry.Tracer
	if *trace {
		tracer = telemetry.NewTracer(telemetry.TracerOptions{
			Capacity:      *traceStore,
			SampleRate:    *traceSample,
			SlowThreshold: *slowQ,
		})
	}

	opts := server.Options{
		Logger:             logger,
		SlowQueryThreshold: *slowQ,
		EnablePprof:        *debug,
		Tracer:             tracer,
	}
	if *admission {
		opts.Admission = &tklus.AdmissionOptions{
			MaxConcurrent: *admissionConc,
			MaxQueue:      *admissionQueue,
			MaxWait:       *admissionWait,
			CostBudget:    *admissionCost,
		}
		logger.Info("admission control enabled",
			"concurrent", *admissionConc, "queue", *admissionQueue,
			"wait", admissionWait.String(), "cost_budget", *admissionCost)
	}

	// Bind the listener before building the system so probes get answers
	// during a long snapshot load or WAL replay: /healthz says the process
	// is alive, /readyz says 503 until the real handler is swapped in.
	boot := &swapHandler{}
	boot.Store(http.HandlerFunc(notReady))
	srv := &http.Server{
		Addr:    *addr,
		Handler: boot,
		// Header/body reads are tiny GETs; writes cover the slowest
		// plausible query against a large corpus.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	var handler *server.Server
	var durable *tklus.System // non-nil when -data owns persistence
	// saver is what checkpoints call: the segmented wrapper when -segments
	// is on (it seals the memtable before each snapshot — the crash-safety
	// ordering), the bare system otherwise.
	var saver interface {
		SaveContext(context.Context, string) error
	}
	if *shards > 0 {
		if *load != "" || *data != "" {
			logger.Error("-shards cannot be combined with -load or -data (images are monolithic)")
			os.Exit(1)
		}
		if *segments {
			logger.Error("-segments cannot be combined with -shards (the segment store is monolithic)")
			os.Exit(1)
		}
		posts, err := ingest.Load(*in, *format)
		if err != nil {
			logger.Error("loading corpus", "err", err)
			os.Exit(1)
		}
		sc := tklus.DefaultShardingConfig()
		sc.NumShards = *shards
		if *replicas > 1 {
			rc := tklus.DefaultReplicationConfig()
			rc.Replicas = *replicas
			rc.Dir = *replicaDir
			if rc.Dir == "" {
				tmp, terr := os.MkdirTemp("", "tklus-replicas-*")
				if terr != nil {
					logger.Error("creating ephemeral replica WAL directory", "err", terr)
					os.Exit(1)
				}
				rc.Dir = tmp
			}
			rs, rerr := tklus.BuildReplicatedSharded(posts, sysConfig(), sc, rc)
			if rerr != nil {
				logger.Error("building replicated sharded tier", "err", rerr)
				os.Exit(1)
			}
			defer rs.Close()
			if *popCache > 0 {
				logger.Info("popularity cache enabled per replica", "capacity", *popCache)
			}
			handler = server.NewSearcherWith(rs, opts)
			logger.Info("serving replicated sharded tier",
				"posts", len(posts), "shards", rs.NumShards(), "replicas", *replicas,
				"wal_dir", rc.Dir, "addr", *addr, "pprof", *debug, "slow_query", slowQ.String())
		} else {
			ss, serr := tklus.BuildSharded(posts, sysConfig(), sc)
			if serr != nil {
				logger.Error("building sharded tier", "err", serr)
				os.Exit(1)
			}
			if *popCache > 0 {
				logger.Info("popularity cache enabled per shard", "capacity", *popCache)
			}
			handler = server.NewSearcherWith(ss, opts)
			logger.Info("serving sharded tier",
				"posts", len(posts), "shards", ss.NumShards(),
				"addr", *addr, "pprof", *debug, "slow_query", slowQ.String())
		}
	} else {
		var sys *tklus.System
		var err error
		switch {
		case *data != "":
			sys, err = openDurable(logger, *data, *in, *format, sysConfig())
		case *load != "":
			sys, err = tklus.Load(*load, sysConfig())
		default:
			var posts []*tklus.Post
			if posts, err = ingest.Load(*in, *format); err != nil {
				logger.Error("loading corpus", "err", err)
				os.Exit(1)
			}
			sys, err = tklus.Build(posts, sysConfig())
		}
		if err != nil {
			logger.Error("building system", "err", err)
			os.Exit(1)
		}
		if *data != "" {
			policy, perr := walPolicy(*walSync)
			if perr != nil {
				logger.Error("bad -wal-sync", "err", perr)
				os.Exit(1)
			}
			if _, err := sys.EnableWAL(*data, tklus.WALOptions{Policy: policy}); err != nil {
				logger.Error("opening ingest WAL", "err", err)
				os.Exit(1)
			}
			durable = sys
			saver = sys
			logger.Info("ingest WAL enabled", "dir", *data, "sync", policy.String())
		}
		if sys.PopCache != nil {
			logger.Info("popularity cache enabled", "capacity", sys.PopCache.Capacity())
		}
		var segSys *tklus.SegmentedSystem
		if *segments {
			segOpts := tklus.SegmentOptions{
				BucketWidth:     *segmentBucket,
				CompactInterval: *compactInterval,
			}
			if *data != "" {
				segOpts.Dir = filepath.Join(*data, "segments")
				segOpts.WALDir = *data
			} else {
				tmp, terr := os.MkdirTemp("", "tklus-segments-*")
				if terr != nil {
					logger.Error("creating ephemeral segment directory", "err", terr)
					os.Exit(1)
				}
				segOpts.Dir = tmp
			}
			segSys, err = tklus.EnableSegments(sys, segOpts)
			if err != nil {
				logger.Error("enabling segment store", "err", err)
				os.Exit(1)
			}
			if durable != nil {
				saver = segSys
			}
			logger.Info("segment store enabled",
				"dir", segOpts.Dir, "segments", segSys.Store.SegmentCount(),
				"memtable_rows", segSys.Store.Memtable().Len(),
				"bucket", segmentBucket.String(), "compact_interval", compactInterval.String())
		}
		if segSys != nil {
			handler = server.NewSearcherWith(segSys, opts)
			segSys.RegisterMetrics(handler.Registry())
		} else {
			handler = server.NewWith(sys, opts)
		}
		if durable != nil {
			durable.RegisterPersistenceMetrics(handler.Registry())
		}
		logger.Info("serving",
			"rows", sys.DB.Len(), "index_keys", sys.Index.NumKeys(),
			"addr", *addr, "pprof", *debug, "slow_query", slowQ.String())
	}

	if tracer != nil {
		tracer.RegisterMetrics(handler.Registry())
		logger.Info("tracing enabled", "sample", *traceSample, "store", *traceStore)
	}
	// The system is built (or recovered): swap the real handler in. From
	// here /readyz answers 200.
	boot.Store(handler)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints bound the WAL replay a crash would cost. Save
	// runs concurrently with serving: it captures a consistent view under
	// the ingest lock and writes the snapshot outside it.
	if durable != nil && *checkpointInterval > 0 {
		go func() {
			ticker := time.NewTicker(*checkpointInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					t0 := time.Now()
					if err := checkpoint(tracer, saver, *data); err != nil {
						logger.Error("checkpoint failed", "err", err)
					} else {
						logger.Info("checkpoint committed", "dir", *data, "elapsed", time.Since(t0).String())
					}
				}
			}
		}()
	}

	select {
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logger.Info("shutting down", "drain_timeout", shutdownTimeout.String())

	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("drain incomplete, closing", "err", err)
		srv.Close()
	}

	// Final checkpoint: fold every ingested post into the snapshot so the
	// next boot replays an empty (or tiny) WAL.
	if durable != nil {
		if err := checkpoint(tracer, saver, *data); err != nil {
			logger.Error("final checkpoint failed (WAL still covers the ingests)", "err", err)
		} else {
			logger.Info("final checkpoint committed", "dir", *data)
		}
		if err := durable.CloseWAL(); err != nil {
			logger.Warn("closing ingest WAL", "err", err)
		}
	}

	// Flush a final metrics snapshot so the last scrape interval is not
	// lost when the process exits.
	var snap strings.Builder
	if err := handler.Registry().WritePrometheus(&snap); err == nil {
		logger.Info("final metrics snapshot\n" + snap.String())
	}
	logger.Info("bye")
}

// swapHandler lets the HTTP server start answering probes before the
// system finishes loading: it serves whatever handler was last stored —
// notReady during boot, the real server afterwards. The handler is boxed
// in a struct because atomic.Value requires one concrete stored type,
// and the two handlers stored over the swap's lifetime differ.
type swapHandler struct {
	v atomic.Value // handlerBox
}

type handlerBox struct{ h http.Handler }

func (h *swapHandler) Store(next http.Handler) {
	h.v.Store(handlerBox{next})
}

func (h *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.v.Load().(handlerBox).h.ServeHTTP(w, r)
}

// notReady is the boot-phase handler: alive but not ready. Kubernetes-style
// orchestrators keep traffic away on the 503 /readyz while the liveness
// probe stays green through a long WAL replay.
func notReady(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
		return
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "starting: snapshot load / WAL replay in progress", http.StatusServiceUnavailable)
}

// checkpoint commits one snapshot, under its own trace when tracing is on
// (checkpoints are background work, so each Save roots a fresh trace; the
// save/capture/write/commit/gc phases land as its child spans). The saver
// is the segmented wrapper when -segments is on, so the memtable seals
// before the snapshot's WAL rotation mark moves.
func checkpoint(tracer *telemetry.Tracer, saver interface {
	SaveContext(context.Context, string) error
}, dir string) error {
	span := tracer.StartTrace("checkpoint")
	err := saver.SaveContext(telemetry.ContextWithSpan(context.Background(), span), dir)
	span.SetError(err)
	span.Finish()
	return err
}

// openDurable resolves the -data directory: load the committed snapshot
// when there is one (the normal restart path, WAL replayed inside Load),
// otherwise build from the corpus and replay any WAL a first boot left
// behind before it managed to commit a snapshot.
func openDurable(logger *slog.Logger, dataDir, in, format string, cfg tklus.Config) (*tklus.System, error) {
	if tklus.SnapshotExists(dataDir) {
		sys, err := tklus.Load(dataDir, cfg)
		if err != nil {
			return nil, err
		}
		logger.Info("recovered from snapshot",
			"snapshot", sys.Recovery.Snapshot,
			"wal_replayed", sys.Recovery.WALRecordsReplayed,
			"wal_skipped", sys.Recovery.WALRecordsSkipped,
			"wal_bytes", sys.Recovery.WALBytes,
			"replay", sys.Recovery.WALReplayDuration.String(),
			"torn_tail", sys.Recovery.WALTornTail)
		return sys, nil
	}
	posts, err := ingest.Load(in, format)
	if err != nil {
		return nil, err
	}
	sys, err := tklus.Build(posts, cfg)
	if err != nil {
		return nil, err
	}
	rec, err := sys.ReplayWAL(dataDir)
	if err != nil {
		return nil, err
	}
	if rec.WALRecordsReplayed > 0 || rec.WALRecordsSkipped > 0 {
		logger.Info("replayed WAL over corpus build",
			"wal_replayed", rec.WALRecordsReplayed, "wal_skipped", rec.WALRecordsSkipped)
	}
	// Commit the base snapshot now: from here on a crash recovers from
	// disk instead of re-reading the corpus.
	if err := sys.Save(dataDir); err != nil {
		return nil, err
	}
	logger.Info("initial snapshot committed", "dir", dataDir, "rows", sys.DB.Len())
	return sys, nil
}

// walPolicy parses the -wal-sync flag.
func walPolicy(s string) (tklus.WALSyncPolicy, error) {
	switch s {
	case "record":
		return tklus.WALSyncEveryRecord, nil
	case "interval":
		return tklus.WALSyncInterval, nil
	case "off":
		return tklus.WALSyncOff, nil
	default:
		return 0, fmt.Errorf("unknown WAL sync policy %q: want record|interval|off", s)
	}
}
