// Command tklus-server serves TkLUS queries over HTTP. It either builds
// the system from a JSONL corpus or loads an image saved by
// tklus-index -save.
//
// Usage:
//
//	tklus-server -in corpus.jsonl -addr :8080
//	tklus-server -load ./sysimg  -addr :8080
//
//	curl 'localhost:8080/search?lat=43.68&lon=-79.37&radius=10&keywords=hotel&k=5'
//	curl 'localhost:8080/evidence?lat=43.68&lon=-79.37&radius=10&keywords=hotel&uid=1'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	tklus "repro"
	"repro/internal/ingest"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-server: ")

	var (
		in     = flag.String("in", "corpus.jsonl", "input corpus")
		format = flag.String("format", "jsonl", "input format: jsonl | twitter (REST v1.1 statuses)")
		load   = flag.String("load", "", "load a saved system image instead of rebuilding")
		addr   = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	var sys *tklus.System
	var err error
	if *load != "" {
		sys, err = tklus.Load(*load, tklus.DefaultConfig())
	} else {
		var posts []*tklus.Post
		if posts, err = ingest.Load(*in, *format); err != nil {
			log.Fatal(err)
		}
		sys, err = tklus.Build(posts, tklus.DefaultConfig())
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("serving %d rows, %d index keys on %s\n", sys.DB.Len(), sys.Index.NumKeys(), *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(sys)))
}
