// Command tklus-server serves TkLUS queries over HTTP. It either builds
// the system from a JSONL corpus or loads an image saved by
// tklus-index -save.
//
// Usage:
//
//	tklus-server -in corpus.jsonl -addr :8080
//	tklus-server -load ./sysimg  -addr :8080 -debug -slow-query 250ms
//	tklus-server -in corpus.jsonl -shards 4    # in-process sharded tier
//
//	curl 'localhost:8080/search?lat=43.68&lon=-79.37&radius=10&keywords=hotel&k=5'
//	curl -d '{"lat":43.68,"lon":-79.37,"radius_km":10,"keywords":["hotel"],"k":5}' localhost:8080/v1/search
//	curl 'localhost:8080/evidence?lat=43.68&lon=-79.37&radius=10&keywords=hotel&uid=1'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'          # Prometheus text exposition
//	go tool pprof localhost:8080/debug/pprof/profile   # with -debug
//
// The server installs Read/Write/Idle timeouts and shuts down gracefully
// on SIGINT/SIGTERM: in-flight queries drain (up to -shutdown-timeout),
// then a final metrics snapshot is flushed to the log.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	tklus "repro"
	"repro/internal/ingest"
	"repro/internal/server"
)

func main() {
	var (
		in     = flag.String("in", "corpus.jsonl", "input corpus")
		format = flag.String("format", "jsonl", "input format: jsonl | twitter (REST v1.1 statuses)")
		load   = flag.String("load", "", "load a saved system image instead of rebuilding")
		addr   = flag.String("addr", ":8080", "listen address")
		debug  = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		slowQ  = flag.Duration("slow-query", 250*time.Millisecond,
			"log queries at or above this duration (0 disables the slow-query log)")
		popCache = flag.Int("popcache", 4096,
			"thread-popularity cache capacity in entries (0 disables the cache)")
		shards = flag.Int("shards", 0,
			"serve an in-process sharded tier with this many geo-shards (0 = monolithic; incompatible with -load)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second,
			"how long to drain in-flight queries on SIGINT/SIGTERM")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	opts := server.Options{
		Logger:             logger,
		SlowQueryThreshold: *slowQ,
		EnablePprof:        *debug,
	}

	var handler *server.Server
	if *shards > 0 {
		if *load != "" {
			logger.Error("-shards cannot be combined with -load (images are monolithic)")
			os.Exit(1)
		}
		posts, err := ingest.Load(*in, *format)
		if err != nil {
			logger.Error("loading corpus", "err", err)
			os.Exit(1)
		}
		sc := tklus.DefaultShardingConfig()
		sc.NumShards = *shards
		ss, err := tklus.BuildSharded(posts, tklus.DefaultConfig(), sc)
		if err != nil {
			logger.Error("building sharded tier", "err", err)
			os.Exit(1)
		}
		if *popCache > 0 {
			for _, sys := range ss.Systems {
				sys.EnablePopCache(*popCache)
			}
			logger.Info("popularity cache enabled per shard", "capacity", *popCache)
		}
		handler = server.NewSearcherWith(ss, opts)
		logger.Info("serving sharded tier",
			"posts", len(posts), "shards", ss.NumShards(),
			"addr", *addr, "pprof", *debug, "slow_query", slowQ.String())
	} else {
		var sys *tklus.System
		var err error
		if *load != "" {
			sys, err = tklus.Load(*load, tklus.DefaultConfig())
		} else {
			var posts []*tklus.Post
			if posts, err = ingest.Load(*in, *format); err != nil {
				logger.Error("loading corpus", "err", err)
				os.Exit(1)
			}
			sys, err = tklus.Build(posts, tklus.DefaultConfig())
		}
		if err != nil {
			logger.Error("building system", "err", err)
			os.Exit(1)
		}
		if *popCache > 0 {
			c := sys.EnablePopCache(*popCache)
			logger.Info("popularity cache enabled", "capacity", c.Capacity())
		}
		handler = server.NewWith(sys, opts)
		logger.Info("serving",
			"rows", sys.DB.Len(), "index_keys", sys.Index.NumKeys(),
			"addr", *addr, "pprof", *debug, "slow_query", slowQ.String())
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Header/body reads are tiny GETs; writes cover the slowest
		// plausible query against a large corpus.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logger.Info("shutting down", "drain_timeout", shutdownTimeout.String())

	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("drain incomplete, closing", "err", err)
		srv.Close()
	}

	// Flush a final metrics snapshot so the last scrape interval is not
	// lost when the process exits.
	var snap strings.Builder
	if err := handler.Registry().WritePrometheus(&snap); err == nil {
		logger.Info("final metrics snapshot\n" + snap.String())
	}
	logger.Info("bye")
}
