// Command tklus-query loads a JSONL corpus, builds the full system, and
// answers one TkLUS query from the command line.
//
// Usage:
//
//	tklus-query -in corpus.jsonl -lat 43.6839 -lon -79.3736 \
//	    -radius 10 -k 5 -keywords "hotel" -ranking max -semantic or
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	tklus "repro"
	"repro/internal/ingest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-query: ")

	var (
		in       = flag.String("in", "corpus.jsonl", "input corpus")
		format   = flag.String("format", "jsonl", "input format: jsonl | twitter (REST v1.1 statuses)")
		load     = flag.String("load", "", "load a system saved by tklus-index -save instead of rebuilding")
		lat      = flag.Float64("lat", 43.6839128037, "query latitude")
		lon      = flag.Float64("lon", -79.37356590, "query longitude")
		radius   = flag.Float64("radius", 10, "query radius in km")
		k        = flag.Int("k", 5, "number of users to return")
		keywords = flag.String("keywords", "hotel", "space-separated query keywords")
		ranking  = flag.String("ranking", "max", "user ranking: sum | max")
		semantic = flag.String("semantic", "or", "multi-keyword semantic: and | or")
		geohash  = flag.Int("geohash", 4, "geohash encoding length")
		verbose  = flag.Bool("v", false, "print per-query work statistics")
		evidence = flag.Int("evidence", 0, "also print up to N matching tweets per returned user")
	)
	flag.Parse()

	cfg := tklus.DefaultConfig()
	cfg.Index.GeohashLen = *geohash

	var sys *tklus.System
	if *load != "" {
		var err error
		sys, err = tklus.Load(*load, cfg)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		posts, err := ingest.Load(*in, *format)
		if err != nil {
			log.Fatal(err)
		}
		sys, err = tklus.Build(posts, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	q := tklus.Query{
		Loc:      tklus.Point{Lat: *lat, Lon: *lon},
		RadiusKm: *radius,
		Keywords: strings.Fields(*keywords),
		K:        *k,
	}
	switch *ranking {
	case "sum":
		q.Ranking = tklus.SumScore
	case "max":
		q.Ranking = tklus.MaxScore
	default:
		log.Fatalf("unknown ranking %q (want sum or max)", *ranking)
	}
	switch *semantic {
	case "and":
		q.Semantic = tklus.And
	case "or":
		q.Semantic = tklus.Or
	default:
		log.Fatalf("unknown semantic %q (want and or or)", *semantic)
	}

	results, stats, err := sys.Search(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d local users for %q within %.0f km of (%.4f, %.4f) [%s, %s]:\n",
		*k, *keywords, *radius, *lat, *lon, *ranking, *semantic)
	if len(results) == 0 {
		fmt.Println("  (no matching users)")
	}
	for i, r := range results {
		fmt.Printf("  %2d. user %-8d score %.4f  (%d posts in corpus)\n",
			i+1, r.UID, r.Score, sys.DB.PostCountOfUser(r.UID))
		if *evidence > 0 {
			texts, err := sys.Evidence(q, r.UID, *evidence)
			if err != nil {
				log.Fatal(err)
			}
			for _, text := range texts {
				fmt.Printf("        · %s\n", text)
			}
		}
	}
	if *verbose {
		fmt.Printf("\nwork: %d cells, %d postings lists, %d candidates, "+
			"%d threads built, %d pruned, %d blocks skipped (%d postings), "+
			"%d partitions pruned, %v elapsed\n",
			stats.Cells, stats.PostingsFetched, stats.Candidates,
			stats.ThreadsBuilt, stats.ThreadsPruned, stats.BlocksSkipped,
			stats.PostingsSkipped, stats.PartitionsPruned,
			stats.Elapsed.Round(time.Microsecond))
	}
}
