// Command tklus-datagen generates a synthetic geo-tagged tweet corpus and
// writes it as JSON Lines, standing in for the paper's Twitter REST API
// crawl (Section VI: 514 M geo-tagged tweets, Sep 2012 – Feb 2013).
//
// Usage:
//
//	tklus-datagen -posts 60000 -users 4000 -seed 1 -out corpus.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/corpusio"
	"repro/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tklus-datagen: ")

	var (
		posts = flag.Int("posts", 60000, "number of posts to generate")
		users = flag.Int("users", 4000, "number of users")
		seed  = flag.Int64("seed", 1, "random seed (equal seeds give identical corpora)")
		out   = flag.String("out", "corpus.jsonl", "output path (- for stdout)")
	)
	flag.Parse()

	cfg := datagen.DefaultConfig()
	cfg.NumPosts = *posts
	cfg.NumUsers = *users
	cfg.Seed = *seed
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := corpusio.Write(w, corpus.Posts); err != nil {
		log.Fatal(err)
	}

	experts := 0
	for _, u := range corpus.Users {
		if u.Expertise != "" {
			experts++
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d posts by %d users (%d local experts) to %s\n",
		len(corpus.Posts), len(corpus.Users), experts, *out)
}
