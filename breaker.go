package tklus

import (
	"sync"
	"time"
)

// breaker is the per-replica circuit breaker of the scatter-gather tier: a
// backend that fails threshold times in a row is taken out of rotation
// (queries over its region degrade or fail over instantly instead of
// waiting out a timeout each time), and after a cooldown a single probe
// request is let through — probe success closes the circuit, probe failure
// re-opens it for another cooldown.
//
// Failures counted here are whole-request outcomes: a hedged pair counts
// once, and a request rejected by the open breaker counts not at all.
//
// Classification rule: only errors that say something about the BACKEND
// count. A sub-query that died because the caller canceled (client
// disconnect) or because the query-wide deadline expired before the
// backend's own budget is neither a failure nor a success — the breaker
// does not move (outcomeAbandon). A backend that exhausts its per-shard
// timeout while the parent context is still healthy counts as a failure.
//
// Attribution rule: every admitted request carries a token stamped with
// the breaker generation it was admitted under, and only outcomes from the
// CURRENT generation move the state machine. The generation advances on
// every state transition, so a straggler admitted while the circuit was
// still closed cannot close an open circuit when it finally succeeds, and
// cannot re-trip a half-open circuit whose probe is still in flight —
// during half-open, exactly one probe token exists and only its outcome
// decides.
type breaker struct {
	threshold int           // consecutive failures to trip; <= 0 disables
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	mu          sync.Mutex
	state       breakerState
	gen         uint64 // bumped on every state transition
	consecutive int
	openedAt    time.Time
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breakerToken identifies one admitted request to the breaker so its
// outcome can be attributed to the state the breaker was in at admission.
type breakerToken struct {
	gen   uint64
	probe bool // admitted as the half-open probe
}

// breakerOutcome classifies how an admitted request ended.
type breakerOutcome int

const (
	// outcomeSuccess: the backend answered.
	outcomeSuccess breakerOutcome = iota
	// outcomeFailure: the backend failed in a way attributable to it.
	outcomeFailure
	// outcomeAbandon: the request died for reasons that say nothing about
	// the backend (client cancel, query-wide deadline). A half-open probe
	// abandoned this way returns the circuit to open with its original
	// openedAt, so the next allow can immediately admit a fresh probe.
	outcomeAbandon
)

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may proceed, and on admission returns
// the token the caller must hand back to done. While open it fails fast
// until the cooldown elapses, then flips to half-open and admits exactly
// one probe; further requests keep failing fast until the probe reports.
func (b *breaker) allow() (breakerToken, bool) {
	if b.threshold <= 0 {
		return breakerToken{}, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return breakerToken{gen: b.gen}, true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transition(breakerHalfOpen)
			return breakerToken{gen: b.gen, probe: true}, true
		}
		return breakerToken{}, false
	default: // half-open: the probe is already in flight
		return breakerToken{}, false
	}
}

// done reports an admitted request's outcome. Outcomes whose token is from
// an earlier generation are ignored — the state the request was admitted
// under no longer exists, so the request proves nothing about the current
// one.
func (b *breaker) done(t breakerToken, outcome breakerOutcome) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.gen != b.gen {
		return // straggler from a previous state: no evidence about this one
	}
	switch b.state {
	case breakerHalfOpen:
		if !t.probe {
			return // unreachable: the half-open transition bumped gen
		}
		switch outcome {
		case outcomeSuccess:
			b.transition(breakerClosed)
			b.consecutive = 0
		case outcomeFailure:
			b.transition(breakerOpen)
			b.openedAt = b.now()
		case outcomeAbandon:
			// The probe said nothing; reopen with the ORIGINAL open time so
			// the cooldown stays elapsed and the next allow re-probes.
			b.transition(breakerOpen)
		}
	case breakerClosed:
		switch outcome {
		case outcomeSuccess:
			b.consecutive = 0
		case outcomeFailure:
			b.consecutive++
			if b.consecutive >= b.threshold {
				b.transition(breakerOpen)
				b.openedAt = b.now()
			}
		}
	}
}

// transition moves the state machine and invalidates every outstanding
// token by advancing the generation. Caller holds b.mu.
func (b *breaker) transition(to breakerState) {
	b.state = to
	b.gen++
}

// snapshot returns the current state name (for metrics and degradation
// reports).
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
