package tklus

import (
	"sync"
	"time"
)

// breaker is the per-shard circuit breaker of the scatter-gather tier: a
// shard that fails threshold times in a row is taken out of rotation
// (queries over its region degrade instantly instead of waiting out a
// timeout each time), and after a cooldown a single probe request is let
// through — success closes the circuit, failure re-opens it for another
// cooldown.
//
// Failures counted here are whole-request outcomes: a hedged pair counts
// once, and a request rejected by the open breaker counts not at all.
//
// Classification rule: only errors that say something about the SHARD
// count. A sub-query that died because the caller canceled (client
// disconnect) or because the query-wide deadline expired before the
// shard's own budget is neither a failure nor a success — the breaker
// does not move. A shard that exhausts its per-shard timeout while the
// parent context is still healthy counts as a failure.
type breaker struct {
	threshold int           // consecutive failures to trip; <= 0 disables
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may proceed. While open it fails fast
// until the cooldown elapses, then flips to half-open and admits exactly
// one probe; further requests keep failing fast until the probe reports.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// onSuccess records a successful request, closing the circuit.
func (b *breaker) onSuccess() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
}

// onFailure records a failed request, tripping the circuit at the
// threshold and re-opening it when a half-open probe fails.
func (b *breaker) onFailure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// snapshot returns the current state name (for metrics and degradation
// reports).
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
